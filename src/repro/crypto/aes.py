"""Pure-Python AES block cipher (AES-128, AES-192, AES-256).

This module implements the Rijndael block cipher exactly as standardized in
FIPS-197.  It is the functional model of the Shield's AES engines: the RTL in
the original ShEF artifact instantiates a table-based AES core whose S-box can
be duplicated for parallelism; here the *functional* behaviour lives in
:class:`AES` while the parallelism/performance knob is modelled separately in
:mod:`repro.core.timing`.

Only the raw block transform lives here; chaining modes are in
:mod:`repro.crypto.modes`.
"""

from __future__ import annotations

from repro.errors import InvalidKeyError

BLOCK_SIZE = 16

# ---------------------------------------------------------------------------
# S-box generation.  We build the S-box programmatically (multiplicative
# inverse in GF(2^8) followed by the affine transform) rather than pasting a
# 256-entry magic table, which keeps the construction auditable.
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    # Compute multiplicative inverses via exponentiation by the group order.
    inverse = [0] * 256
    for x in range(1, 256):
        # x^254 == x^-1 in GF(2^8)*
        acc = 1
        base = x
        exp = 254
        while exp:
            if exp & 1:
                acc = _gf_mul(acc, base)
            base = _gf_mul(base, base)
            exp >>= 1
        inverse[x] = acc

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for x in range(256):
        value = inverse[x]
        # Affine transform over GF(2).
        result = 0
        for bit in range(8):
            result |= (
                (
                    (value >> bit)
                    ^ (value >> ((bit + 4) % 8))
                    ^ (value >> ((bit + 5) % 8))
                    ^ (value >> ((bit + 6) % 8))
                    ^ (value >> ((bit + 7) % 8))
                    ^ (0x63 >> bit)
                )
                & 1
            ) << bit
        sbox[x] = result
        inv_sbox[result] = x
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))

# Pre-computed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = [_gf_mul(x, 2) for x in range(256)]
_MUL3 = [_gf_mul(x, 3) for x in range(256)]
_MUL9 = [_gf_mul(x, 9) for x in range(256)]
_MUL11 = [_gf_mul(x, 11) for x in range(256)]
_MUL13 = [_gf_mul(x, 13) for x in range(256)]
_MUL14 = [_gf_mul(x, 14) for x in range(256)]

_ROUNDS_BY_KEYLEN = {16: 10, 24: 12, 32: 14}


class AES:
    """The AES block cipher.

    Parameters
    ----------
    key:
        16-, 24-, or 32-byte key (AES-128/192/256).
    """

    def __init__(self, key: bytes):
        if not isinstance(key, (bytes, bytearray)):
            raise InvalidKeyError("AES key must be bytes")
        key = bytes(key)
        if len(key) not in _ROUNDS_BY_KEYLEN:
            raise InvalidKeyError(
                f"AES key must be 16, 24, or 32 bytes, got {len(key)}"
            )
        self._key = key
        self.rounds = _ROUNDS_BY_KEYLEN[len(key)]
        self._round_keys = self._expand_key(key)

    @property
    def key_bits(self) -> int:
        """Key size in bits (128, 192, or 256)."""
        return len(self._key) * 8

    # -- key schedule -------------------------------------------------------

    def _expand_key(self, key: bytes) -> list[list[int]]:
        key_words = len(key) // 4
        total_words = 4 * (self.rounds + 1)
        words = [list(key[4 * i : 4 * i + 4]) for i in range(key_words)]
        for i in range(key_words, total_words):
            temp = list(words[i - 1])
            if i % key_words == 0:
                temp = temp[1:] + temp[:1]
                temp = [SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // key_words - 1]
            elif key_words > 6 and i % key_words == 4:
                temp = [SBOX[b] for b in temp]
            words.append([words[i - key_words][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for round_index in range(self.rounds + 1):
            round_key = []
            for word in words[4 * round_index : 4 * round_index + 4]:
                round_key.extend(word)
            round_keys.append(round_key)
        return round_keys

    # -- block transforms ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"AES block must be {BLOCK_SIZE} bytes")
        state = [block[c * 4 + r] for r in range(4) for c in range(4)]
        state = self._add_round_key(state, 0)
        for round_index in range(1, self.rounds):
            state = [SBOX[b] for b in state]
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = self._add_round_key(state, round_index)
        state = [SBOX[b] for b in state]
        state = self._shift_rows(state)
        state = self._add_round_key(state, self.rounds)
        return bytes(state[4 * r + c] for c in range(4) for r in range(4))

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"AES block must be {BLOCK_SIZE} bytes")
        state = [block[c * 4 + r] for r in range(4) for c in range(4)]
        state = self._add_round_key(state, self.rounds)
        for round_index in range(self.rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            state = [INV_SBOX[b] for b in state]
            state = self._add_round_key(state, round_index)
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        state = [INV_SBOX[b] for b in state]
        state = self._add_round_key(state, 0)
        return bytes(state[4 * r + c] for c in range(4) for r in range(4))

    # -- internal round operations (row-major state: state[4*r + c]) --------

    def _add_round_key(self, state: list[int], round_index: int) -> list[int]:
        round_key = self._round_keys[round_index]
        # round_key is column-major (word i = column i).
        return [
            state[4 * r + c] ^ round_key[4 * c + r] for r in range(4) for c in range(4)
        ]

    @staticmethod
    def _shift_rows(state: list[int]) -> list[int]:
        out = list(state)
        for r in range(1, 4):
            row = state[4 * r : 4 * r + 4]
            out[4 * r : 4 * r + 4] = row[r:] + row[:r]
        return out

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> list[int]:
        out = list(state)
        for r in range(1, 4):
            row = state[4 * r : 4 * r + 4]
            out[4 * r : 4 * r + 4] = row[-r:] + row[:-r]
        return out

    @staticmethod
    def _mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = (state[4 * r + c] for r in range(4))
            out[0 + c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            out[4 + c] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            out[8 + c] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            out[12 + c] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
        return out

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = (state[4 * r + c] for r in range(4))
            out[0 + c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[4 + c] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[8 + c] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[12 + c] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out


def gf_multiply(a: int, b: int) -> int:
    """Public GF(2^8) multiply helper (used by PMAC doubling and tests)."""
    return _gf_mul(a, b)
