"""Named key containers used throughout the ShEF workflow.

The paper's workflow (Figure 2) juggles a large cast of keys -- the AES device
key, the private device key, the Bitstream Encryption Key, the Shield
Encryption Key, the Attestation Key, the Verification Key, the Session Key,
the Data Encryption Key, and the Load Key.  Representing each as a small typed
container (rather than loose ``bytes``) makes the protocol code self-describing
and lets tests assert that, for example, the Security Kernel never holds a
:class:`DeviceKeySet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.drbg import HmacDrbg
from repro.crypto.ecc import EcPrivateKey, EcPublicKey
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.errors import InvalidKeyError

SYMMETRIC_KEY_SIZES = (16, 32)


@dataclass(frozen=True)
class SymmetricKey:
    """A raw symmetric key with a human-readable purpose label."""

    material: bytes
    purpose: str = "generic"

    def __post_init__(self) -> None:
        if len(self.material) not in SYMMETRIC_KEY_SIZES:
            raise InvalidKeyError(
                f"symmetric key must be 16 or 32 bytes, got {len(self.material)}"
            )

    @property
    def bits(self) -> int:
        return len(self.material) * 8

    @staticmethod
    def generate(rng: HmacDrbg, bits: int = 256, purpose: str = "generic") -> "SymmetricKey":
        if bits not in (128, 256):
            raise InvalidKeyError("symmetric keys must be 128 or 256 bits")
        return SymmetricKey(rng.generate(bits // 8), purpose)

    def __repr__(self) -> str:  # Never print key material.
        return f"SymmetricKey(purpose={self.purpose!r}, bits={self.bits})"


@dataclass(frozen=True, repr=False)
class AesDeviceKey(SymmetricKey):
    """The manufacturer-burned AES device key (the true root of trust)."""

    purpose: str = "aes-device-key"


@dataclass(frozen=True, repr=False)
class BitstreamKey(SymmetricKey):
    """The IP Vendor's Bitstream Encryption Key."""

    purpose: str = "bitstream-encryption-key"


@dataclass(frozen=True, repr=False)
class DataEncryptionKey(SymmetricKey):
    """The Data Owner's per-Shield Data Encryption Key."""

    purpose: str = "data-encryption-key"


@dataclass(frozen=True, repr=False)
class SessionKey(SymmetricKey):
    """The symmetric session key agreed during remote attestation."""

    purpose: str = "session-key"


@dataclass(frozen=True)
class DeviceKeySet:
    """Both manufacturer-provisioned roots of trust for one FPGA device.

    Only the Manufacturer and the SPB firmware ever hold this object.
    """

    aes_key: AesDeviceKey
    private_key: EcPrivateKey = field(repr=False)
    device_serial: str

    @property
    def public_key(self) -> EcPublicKey:
        return self.private_key.public_key


@dataclass(frozen=True)
class AttestationKeyPair:
    """The per-boot Attestation Key, bound to (device, Security Kernel hash)."""

    private_key: EcPrivateKey = field(repr=False)
    kernel_hash: bytes

    @property
    def public_key(self) -> EcPublicKey:
        return self.private_key.public_key


@dataclass(frozen=True)
class ShieldEncryptionKeyPair:
    """The IP Vendor's Shield Encryption Key (asymmetric; private half is in the Shield)."""

    private_key: RsaPrivateKey = field(repr=False)

    @property
    def public_key(self) -> RsaPublicKey:
        return self.private_key.public_key


@dataclass(frozen=True)
class LoadKey:
    """The Data Encryption Key wrapped under the public Shield Encryption Key."""

    wrapped: bytes
    shield_id: str = "shield0"


@dataclass
class KeyRing:
    """A labelled bag of symmetric keys (used by the Data Owner for many Shields)."""

    keys: dict = field(default_factory=dict)

    def add(self, name: str, key: SymmetricKey) -> None:
        if name in self.keys:
            raise InvalidKeyError(f"key {name!r} already present in key ring")
        self.keys[name] = key

    def get(self, name: str) -> SymmetricKey:
        try:
            return self.keys[name]
        except KeyError:
            raise InvalidKeyError(f"key {name!r} not present in key ring") from None

    def __contains__(self, name: str) -> bool:
        return name in self.keys

    def __len__(self) -> int:
        return len(self.keys)
