"""Message-authentication codes used by the Shield: HMAC-SHA256, AES-CMAC, AES-PMAC.

The paper's Shield ships a SHA-256 HMAC engine by default and offers an
AES-based PMAC engine as a drop-in replacement whose block computations can be
parallelized (Section 6.2.3-6.2.4: swapping HMAC for PMAC removes the
authentication bottleneck for DNNWeaver and SDP).  Functionally all three MACs
produce 16- or 32-byte tags; the throughput difference is modelled in
:mod:`repro.core.timing`.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE, gf_multiply
from repro.crypto.hashes import SHA256
from repro.errors import IntegrityError


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit on the first mismatch."""
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0


# ---------------------------------------------------------------------------
# HMAC-SHA256
# ---------------------------------------------------------------------------


def hmac_key_pads(key: bytes) -> tuple[bytes, bytes]:
    """Derive the RFC 2104 ``(i_key_pad, o_key_pad)`` pair for ``key``.

    Shared with the batched fast path (:mod:`repro.crypto.fasthash`) so the
    key-preparation rule -- hash over-long keys, zero-pad, XOR with
    0x36/0x5C -- lives in exactly one place.
    """
    block_size = SHA256.block_size
    if len(key) > block_size:
        key = SHA256(key).digest()
    key = key + b"\x00" * (block_size - len(key))
    return bytes(b ^ 0x36 for b in key), bytes(b ^ 0x5C for b in key)


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256 (RFC 2104) of ``message`` under ``key``."""
    i_key_pad, o_key_pad = hmac_key_pads(key)
    inner = SHA256(i_key_pad + message).digest()
    return SHA256(o_key_pad + inner).digest()


def verify_hmac_sha256(key: bytes, message: bytes, tag: bytes) -> None:
    """Raise :class:`IntegrityError` unless ``tag`` authenticates ``message``."""
    if not constant_time_equal(hmac_sha256(key, message), tag):
        raise IntegrityError("HMAC-SHA256 verification failed")


# ---------------------------------------------------------------------------
# AES-CMAC (RFC 4493) - used for firmware and bitstream authentication.
# ---------------------------------------------------------------------------


def _left_shift_one(block: bytes) -> bytes:
    value = int.from_bytes(block, "big") << 1
    return (value & ((1 << 128) - 1)).to_bytes(16, "big")


def _cmac_subkeys(cipher: AES) -> tuple[bytes, bytes]:
    zero = cipher.encrypt_block(b"\x00" * BLOCK_SIZE)
    k1 = _left_shift_one(zero)
    if zero[0] & 0x80:
        k1 = k1[:-1] + bytes([k1[-1] ^ 0x87])
    k2 = _left_shift_one(k1)
    if k1[0] & 0x80:
        k2 = k2[:-1] + bytes([k2[-1] ^ 0x87])
    return k1, k2


def aes_cmac(key: bytes, message: bytes) -> bytes:
    """Compute AES-CMAC of ``message`` under ``key`` (16-byte tag)."""
    cipher = AES(key)
    k1, k2 = _cmac_subkeys(cipher)
    if message and len(message) % BLOCK_SIZE == 0:
        blocks = [message[i : i + BLOCK_SIZE] for i in range(0, len(message), BLOCK_SIZE)]
        blocks[-1] = bytes(x ^ y for x, y in zip(blocks[-1], k1))
    else:
        padded = message + b"\x80" + b"\x00" * (
            BLOCK_SIZE - 1 - (len(message) % BLOCK_SIZE)
        )
        blocks = [padded[i : i + BLOCK_SIZE] for i in range(0, len(padded), BLOCK_SIZE)]
        blocks[-1] = bytes(x ^ y for x, y in zip(blocks[-1], k2))
    state = b"\x00" * BLOCK_SIZE
    for block in blocks:
        state = cipher.encrypt_block(bytes(x ^ y for x, y in zip(state, block)))
    return state


def verify_aes_cmac(key: bytes, message: bytes, tag: bytes) -> None:
    """Raise :class:`IntegrityError` unless ``tag`` authenticates ``message``."""
    if not constant_time_equal(aes_cmac(key, message), tag):
        raise IntegrityError("AES-CMAC verification failed")


# ---------------------------------------------------------------------------
# AES-PMAC.  A parallelizable MAC (Black-Rogaway PMAC1 style): every message
# block is masked with a distinct multiple of L = E_K(0) in GF(2^128) and
# encrypted independently, so a hardware implementation can compute the block
# cipher calls in parallel -- exactly the property the Shield exploits.
# ---------------------------------------------------------------------------


def _double(block_value: int) -> int:
    """Doubling in GF(2^128) with the standard 0x87 reduction polynomial."""
    shifted = block_value << 1
    if shifted & (1 << 128):
        shifted = (shifted & ((1 << 128) - 1)) ^ 0x87
    return shifted


def aes_pmac(key: bytes, message: bytes) -> bytes:
    """Compute a PMAC1-style parallelizable MAC (16-byte tag)."""
    cipher = AES(key)
    l_value = int.from_bytes(cipher.encrypt_block(b"\x00" * BLOCK_SIZE), "big")
    # Offset for the final block processing ("L * x^-1" in PMAC1 is replaced
    # here by a distinct tweak derived from tripling, which preserves the
    # distinct-offsets property this model needs).
    l_inv = _double(_double(l_value))

    full_blocks, remainder = divmod(len(message), BLOCK_SIZE)
    sigma = 0
    offset = l_value
    # All blocks except the last are processed independently (parallelizable).
    last_full = full_blocks - (1 if remainder == 0 and full_blocks > 0 else 0)
    for i in range(last_full):
        block = message[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
        masked = (int.from_bytes(block, "big") ^ offset).to_bytes(16, "big")
        sigma ^= int.from_bytes(cipher.encrypt_block(masked), "big")
        offset = _double(offset)

    if remainder == 0 and full_blocks > 0:
        final_block = message[(full_blocks - 1) * BLOCK_SIZE :]
        sigma ^= int.from_bytes(final_block, "big") ^ l_inv
    else:
        tail = message[full_blocks * BLOCK_SIZE :]
        padded = tail + b"\x80" + b"\x00" * (BLOCK_SIZE - 1 - len(tail))
        sigma ^= int.from_bytes(padded, "big")

    return cipher.encrypt_block(sigma.to_bytes(16, "big"))


def verify_aes_pmac(key: bytes, message: bytes, tag: bytes) -> None:
    """Raise :class:`IntegrityError` unless ``tag`` authenticates ``message``."""
    if not constant_time_equal(aes_pmac(key, message), tag):
        raise IntegrityError("AES-PMAC verification failed")


# ---------------------------------------------------------------------------
# Dispatch table used by the Shield configuration ("HMAC" / "PMAC" / "CMAC").
# ---------------------------------------------------------------------------

MAC_ALGORITHMS = {
    "HMAC": hmac_sha256,
    "PMAC": aes_pmac,
    "CMAC": aes_cmac,
}

MAC_TAG_SIZES = {
    "HMAC": 32,
    "PMAC": 16,
    "CMAC": 16,
}


def compute_mac(algorithm: str, key: bytes, message: bytes) -> bytes:
    """Compute a MAC by algorithm name; see :data:`MAC_ALGORITHMS`."""
    try:
        func = MAC_ALGORITHMS[algorithm]
    except KeyError:
        raise IntegrityError(f"unknown MAC algorithm {algorithm!r}") from None
    return func(key, message)


def verify_mac(algorithm: str, key: bytes, message: bytes, tag: bytes) -> None:
    """Verify a MAC by algorithm name, raising :class:`IntegrityError` on failure."""
    if not constant_time_equal(compute_mac(algorithm, key, message), tag):
        raise IntegrityError(f"{algorithm} verification failed")


__all__ = [
    "constant_time_equal",
    "hmac_key_pads",
    "hmac_sha256",
    "verify_hmac_sha256",
    "aes_cmac",
    "verify_aes_cmac",
    "aes_pmac",
    "verify_aes_pmac",
    "compute_mac",
    "verify_mac",
    "MAC_ALGORITHMS",
    "MAC_TAG_SIZES",
    "gf_multiply",
]
