"""Cryptographic substrate for the ShEF reproduction.

Everything is implemented from scratch on top of the Python standard library:
AES (plus ECB/CBC/CTR modes), SHA-256, HMAC/CMAC/PMAC, RSA, P-256 ECDSA/ECDH,
HKDF, HMAC-DRBG, and an encrypt-then-MAC authenticated cipher.  These are the
primitives that the simulated FPGA hardware, the secure-boot chain, the
attestation protocol, and the Shield build upon.
"""

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.authenc import AuthenticatedCipher, AuthenticatedMessage
from repro.crypto.drbg import HmacDrbg, drbg_from_label
from repro.crypto.ecc import (
    EcPrivateKey,
    EcPublicKey,
    derive_session_key,
    ecdh_shared_secret,
    ecdsa_sign,
    ecdsa_verify,
    ecdsa_verify_strict,
)
from repro.crypto.hashes import SHA256, sha256, sha256_hex
from repro.crypto.kdf import derive_subkey, hkdf
from repro.crypto.keys import (
    AesDeviceKey,
    AttestationKeyPair,
    BitstreamKey,
    DataEncryptionKey,
    DeviceKeySet,
    KeyRing,
    LoadKey,
    SessionKey,
    ShieldEncryptionKeyPair,
    SymmetricKey,
)
from repro.crypto.mac import (
    aes_cmac,
    aes_pmac,
    compute_mac,
    constant_time_equal,
    hmac_sha256,
    verify_mac,
)
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_decrypt,
    ctr_encrypt,
    ctr_transform,
    ecb_decrypt,
    ecb_encrypt,
    xor_bytes,
)
from repro.crypto.rsa import (
    RsaPrivateKey,
    RsaPublicKey,
    rsa_decrypt,
    rsa_encrypt,
    rsa_sign,
    rsa_verify,
    rsa_verify_strict,
)

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "AuthenticatedCipher",
    "AuthenticatedMessage",
    "HmacDrbg",
    "drbg_from_label",
    "EcPrivateKey",
    "EcPublicKey",
    "derive_session_key",
    "ecdh_shared_secret",
    "ecdsa_sign",
    "ecdsa_verify",
    "ecdsa_verify_strict",
    "SHA256",
    "sha256",
    "sha256_hex",
    "derive_subkey",
    "hkdf",
    "AesDeviceKey",
    "AttestationKeyPair",
    "BitstreamKey",
    "DataEncryptionKey",
    "DeviceKeySet",
    "KeyRing",
    "LoadKey",
    "SessionKey",
    "ShieldEncryptionKeyPair",
    "SymmetricKey",
    "aes_cmac",
    "aes_pmac",
    "compute_mac",
    "constant_time_equal",
    "hmac_sha256",
    "verify_mac",
    "cbc_decrypt",
    "cbc_encrypt",
    "ctr_decrypt",
    "ctr_encrypt",
    "ctr_transform",
    "ecb_decrypt",
    "ecb_encrypt",
    "xor_bytes",
    "RsaPrivateKey",
    "RsaPublicKey",
    "rsa_decrypt",
    "rsa_encrypt",
    "rsa_sign",
    "rsa_verify",
    "rsa_verify_strict",
]
