"""Deterministic random bit generation (HMAC-DRBG, NIST SP 800-90A style).

Simulations in this repository must be reproducible, so every component that
needs randomness (key generation, nonces, synthetic workload data) draws from
an :class:`HmacDrbg` seeded explicitly.  ``secrets``-quality entropy is not
required for a simulator; determinism and statistical quality are.
"""

from __future__ import annotations

from repro.crypto.mac import hmac_sha256


class HmacDrbg:
    """HMAC-DRBG over SHA-256 with a deterministic seed."""

    def __init__(self, seed: bytes, personalization: bytes = b""):
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("DRBG seed must be bytes")
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._reseed_counter = 1
        self._update(bytes(seed) + personalization)

    def _update(self, provided_data: bytes = b"") -> None:
        self._key = hmac_sha256(self._key, self._value + b"\x00" + provided_data)
        self._value = hmac_sha256(self._key, self._value)
        if provided_data:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + provided_data)
            self._value = hmac_sha256(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix additional entropy into the generator state."""
        self._update(entropy)
        self._reseed_counter = 1

    def generate(self, num_bytes: int) -> bytes:
        """Return ``num_bytes`` of pseudo-random output."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        output = b""
        while len(output) < num_bytes:
            self._value = hmac_sha256(self._key, self._value)
            output += self._value
        self._update()
        self._reseed_counter += 1
        return output[:num_bytes]

    def random_int(self, bits: int) -> int:
        """Return a uniformly random integer with at most ``bits`` bits."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        num_bytes = (bits + 7) // 8
        value = int.from_bytes(self.generate(num_bytes), "big")
        return value >> (num_bytes * 8 - bits)

    def randint_below(self, upper: int) -> int:
        """Return a uniformly random integer in ``[0, upper)``."""
        if upper <= 0:
            raise ValueError("upper must be positive")
        bits = upper.bit_length()
        while True:
            candidate = self.random_int(bits)
            if candidate < upper:
                return candidate

    def randrange(self, lower: int, upper: int) -> int:
        """Return a uniformly random integer in ``[lower, upper)``."""
        if upper <= lower:
            raise ValueError("upper must exceed lower")
        return lower + self.randint_below(upper - lower)


def drbg_from_label(seed: int, label: str) -> HmacDrbg:
    """Convenience constructor: build a DRBG from an integer seed and a label."""
    return HmacDrbg(seed.to_bytes(8, "big", signed=False), label.encode("utf-8"))
