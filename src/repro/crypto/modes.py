"""Block-cipher modes of operation (ECB, CBC, CTR) over :class:`~repro.crypto.aes.AES`.

The Shield uses AES-CTR for data confidentiality (Section 5.1 of the paper):
each C_mem chunk is associated with a 12-byte initialization vector and a
32-bit block counter, so no two ciphertext blocks ever reuse the same
key-stream block.  ECB and CBC are included because the boot chain (bitstream
and firmware encryption) and the CBC-MAC/CMAC constructions need them.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.padding import pkcs7_pad, pkcs7_unpad
from repro.errors import CryptoError


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise CryptoError("xor_bytes requires equal-length inputs")
    return bytes(x ^ y for x, y in zip(a, b))


# ---------------------------------------------------------------------------
# ECB
# ---------------------------------------------------------------------------


def ecb_encrypt(cipher: AES, plaintext: bytes) -> bytes:
    """Encrypt in ECB mode; the plaintext must be a multiple of the block size."""
    if len(plaintext) % BLOCK_SIZE:
        raise CryptoError("ECB plaintext must be a multiple of 16 bytes")
    return b"".join(
        cipher.encrypt_block(plaintext[i : i + BLOCK_SIZE])
        for i in range(0, len(plaintext), BLOCK_SIZE)
    )


def ecb_decrypt(cipher: AES, ciphertext: bytes) -> bytes:
    """Decrypt in ECB mode; the ciphertext must be a multiple of the block size."""
    if len(ciphertext) % BLOCK_SIZE:
        raise CryptoError("ECB ciphertext must be a multiple of 16 bytes")
    return b"".join(
        cipher.decrypt_block(ciphertext[i : i + BLOCK_SIZE])
        for i in range(0, len(ciphertext), BLOCK_SIZE)
    )


# ---------------------------------------------------------------------------
# CBC (with PKCS#7 padding)
# ---------------------------------------------------------------------------


def cbc_encrypt(cipher: AES, iv: bytes, plaintext: bytes) -> bytes:
    """Encrypt with CBC and PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise CryptoError("CBC IV must be 16 bytes")
    padded = pkcs7_pad(plaintext, BLOCK_SIZE)
    out = []
    previous = iv
    for i in range(0, len(padded), BLOCK_SIZE):
        block = cipher.encrypt_block(xor_bytes(padded[i : i + BLOCK_SIZE], previous))
        out.append(block)
        previous = block
    return b"".join(out)


def cbc_decrypt(cipher: AES, iv: bytes, ciphertext: bytes) -> bytes:
    """Decrypt CBC ciphertext and strip PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise CryptoError("CBC IV must be 16 bytes")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise CryptoError("CBC ciphertext must be a non-empty multiple of 16 bytes")
    out = []
    previous = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        out.append(xor_bytes(cipher.decrypt_block(block), previous))
        previous = block
    return pkcs7_unpad(b"".join(out), BLOCK_SIZE)


# ---------------------------------------------------------------------------
# CTR
# ---------------------------------------------------------------------------


def _counter_block(iv: bytes, counter: int) -> bytes:
    """Compose the 16-byte counter block from a 12-byte IV and a 32-bit counter."""
    return iv + (counter & 0xFFFFFFFF).to_bytes(4, "big")


def ctr_keystream(cipher: AES, iv: bytes, length: int, initial_counter: int = 0) -> bytes:
    """Generate ``length`` bytes of CTR key stream starting at ``initial_counter``."""
    if len(iv) != 12:
        raise CryptoError("CTR IV must be 12 bytes (96 bits)")
    blocks = []
    counter = initial_counter
    produced = 0
    while produced < length:
        blocks.append(cipher.encrypt_block(_counter_block(iv, counter)))
        counter += 1
        produced += BLOCK_SIZE
    return b"".join(blocks)[:length]


def ctr_transform(
    cipher: AES, iv: bytes, data: bytes, initial_counter: int = 0
) -> bytes:
    """Encrypt or decrypt ``data`` in CTR mode (the operation is symmetric)."""
    stream = ctr_keystream(cipher, iv, len(data), initial_counter)
    return xor_bytes(data, stream)


ctr_encrypt = ctr_transform
ctr_decrypt = ctr_transform
