"""PKCS#7 padding helpers used by CBC mode and bitstream containers."""

from __future__ import annotations

from repro.errors import PaddingError


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Append PKCS#7 padding so that the result is a multiple of ``block_size``."""
    if not 1 <= block_size <= 255:
        raise PaddingError("block size must be between 1 and 255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Strip PKCS#7 padding, raising :class:`PaddingError` if it is malformed."""
    if not data or len(data) % block_size:
        raise PaddingError("padded data must be a non-empty multiple of block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise PaddingError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]
