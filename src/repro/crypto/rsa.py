"""RSA key generation, signing, and encryption.

Xilinx devices authenticate bitstreams with RSA while Intel devices use ECDSA
(Section 2.2 of the paper); this module provides the RSA side so both device
profiles can be modelled.  The Shield Encryption Key -- the asymmetric key the
IP Vendor embeds in each Shield so the Data Owner can wrap Data Encryption
Keys into Load Keys -- is also an RSA key by default.

Signing uses a simplified full-domain-hash padding (SHA-256 digest, fixed
prefix, padded to the modulus size) and encryption uses a simplified OAEP
construction with SHA-256 as the mask-generation hash.  Key sizes default to
1024 bits so that pure-Python key generation stays fast inside the test suite;
the construction is parameterized for larger moduli.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashes import sha256
from repro.errors import CryptoError, InvalidKeyError, SignatureError

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def _is_probable_prime(candidate: int, rng: HmacDrbg, rounds: int = 20) -> bool:
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    # Miller-Rabin.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, candidate - 1)
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: HmacDrbg) -> int:
    while True:
        candidate = rng.random_int(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key (modulus, public exponent)."""

    modulus: int
    exponent: int

    @property
    def size_bytes(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def encode(self) -> bytes:
        """Length-prefixed big-endian encoding of (n, e)."""
        n_bytes = self.modulus.to_bytes(self.size_bytes, "big")
        e_bytes = self.exponent.to_bytes(4, "big")
        return len(n_bytes).to_bytes(2, "big") + n_bytes + e_bytes

    @staticmethod
    def decode(data: bytes) -> "RsaPublicKey":
        if len(data) < 6:
            raise InvalidKeyError("truncated RSA public key encoding")
        n_len = int.from_bytes(data[:2], "big")
        if len(data) != 2 + n_len + 4:
            raise InvalidKeyError("malformed RSA public key encoding")
        modulus = int.from_bytes(data[2 : 2 + n_len], "big")
        exponent = int.from_bytes(data[2 + n_len :], "big")
        return RsaPublicKey(modulus, exponent)

    def fingerprint(self) -> bytes:
        """SHA-256 of the encoded public key (published via the CA in the paper)."""
        return sha256(self.encode())


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key with its public counterpart."""

    modulus: int
    public_exponent: int
    private_exponent: int

    def __repr__(self) -> str:  # Never print the private exponent.
        return (
            f"RsaPrivateKey(bits={self.modulus.bit_length()}, "
            f"fingerprint={self.public_key.fingerprint().hex()[:16]})"
        )

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(self.modulus, self.public_exponent)

    @property
    def size_bytes(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    @staticmethod
    def generate(rng: HmacDrbg, bits: int = 1024, exponent: int = 65537) -> "RsaPrivateKey":
        """Generate an RSA key pair of ``bits`` modulus bits."""
        if bits < 512:
            raise InvalidKeyError("RSA modulus must be at least 512 bits")
        while True:
            p = _generate_prime(bits // 2, rng)
            q = _generate_prime(bits - bits // 2, rng)
            if p == q:
                continue
            modulus = p * q
            phi = (p - 1) * (q - 1)
            if phi % exponent == 0:
                continue
            try:
                private_exponent = pow(exponent, -1, phi)
            except ValueError:
                continue
            return RsaPrivateKey(modulus, exponent, private_exponent)

    @staticmethod
    def from_seed(seed: bytes, bits: int = 1024, label: str = "rsa-key") -> "RsaPrivateKey":
        """Deterministically derive an RSA key pair from seed material."""
        return RsaPrivateKey.generate(HmacDrbg(seed, label.encode("utf-8")), bits)

    def encode(self) -> bytes:
        """Length-prefixed big-endian encoding of (n, e, d).

        Used to embed the private Shield Encryption Key inside a bitstream;
        the plaintext bitstream only ever exists inside the device model.
        """
        size = self.size_bytes
        n_bytes = self.modulus.to_bytes(size, "big")
        d_bytes = self.private_exponent.to_bytes(size, "big")
        return (
            size.to_bytes(2, "big")
            + n_bytes
            + self.public_exponent.to_bytes(4, "big")
            + d_bytes
        )

    @staticmethod
    def decode(data: bytes) -> "RsaPrivateKey":
        """Parse an encoding produced by :meth:`encode`."""
        if len(data) < 2:
            raise InvalidKeyError("truncated RSA private key encoding")
        size = int.from_bytes(data[:2], "big")
        expected = 2 + size + 4 + size
        if len(data) != expected:
            raise InvalidKeyError("malformed RSA private key encoding")
        modulus = int.from_bytes(data[2 : 2 + size], "big")
        exponent = int.from_bytes(data[2 + size : 6 + size], "big")
        private_exponent = int.from_bytes(data[6 + size :], "big")
        return RsaPrivateKey(modulus, exponent, private_exponent)


# ---------------------------------------------------------------------------
# Signatures (hash-then-pad).
# ---------------------------------------------------------------------------

_SIGNATURE_PREFIX = b"shef-rsa-fdh-sha256"


def _signature_representative(message: bytes, size: int) -> int:
    digest = sha256(_SIGNATURE_PREFIX + message)
    padded = b"\x00\x01" + b"\xff" * (size - len(digest) - 3) + b"\x00" + digest
    return int.from_bytes(padded, "big")


def rsa_sign(private_key: RsaPrivateKey, message: bytes) -> bytes:
    """Sign ``message`` and return a modulus-sized signature."""
    size = private_key.size_bytes
    rep = _signature_representative(message, size)
    signature = pow(rep, private_key.private_exponent, private_key.modulus)
    return signature.to_bytes(size, "big")


def rsa_verify(public_key: RsaPublicKey, message: bytes, signature: bytes) -> bool:
    """Return True if ``signature`` is valid for ``message``."""
    size = public_key.size_bytes
    if len(signature) != size:
        return False
    recovered = pow(int.from_bytes(signature, "big"), public_key.exponent, public_key.modulus)
    return recovered == _signature_representative(message, size)


def rsa_verify_strict(public_key: RsaPublicKey, message: bytes, signature: bytes) -> None:
    """Like :func:`rsa_verify` but raises :class:`SignatureError` on failure."""
    if not rsa_verify(public_key, message, signature):
        raise SignatureError("RSA signature verification failed")


# ---------------------------------------------------------------------------
# Encryption (simplified OAEP).  Used to wrap the Data Encryption Key into the
# Load Key against the Shield Encryption Key.
# ---------------------------------------------------------------------------


def _mgf1(seed: bytes, length: int) -> bytes:
    output = b""
    counter = 0
    while len(output) < length:
        output += sha256(seed + counter.to_bytes(4, "big"))
        counter += 1
    return output[:length]


def rsa_encrypt(public_key: RsaPublicKey, message: bytes, rng: HmacDrbg) -> bytes:
    """Encrypt a short message (OAEP-style) under the public key."""
    size = public_key.size_bytes
    hash_len = 32
    max_message = size - 2 * hash_len - 2
    if len(message) > max_message:
        raise CryptoError(
            f"RSA plaintext too long: {len(message)} > {max_message} bytes"
        )
    label_hash = sha256(b"")
    padding_string = b"\x00" * (max_message - len(message))
    data_block = label_hash + padding_string + b"\x01" + message
    seed = rng.generate(hash_len)
    masked_db = bytes(
        x ^ y for x, y in zip(data_block, _mgf1(seed, len(data_block)))
    )
    masked_seed = bytes(x ^ y for x, y in zip(seed, _mgf1(masked_db, hash_len)))
    encoded = b"\x00" + masked_seed + masked_db
    ciphertext = pow(int.from_bytes(encoded, "big"), public_key.exponent, public_key.modulus)
    return ciphertext.to_bytes(size, "big")


def rsa_decrypt(private_key: RsaPrivateKey, ciphertext: bytes) -> bytes:
    """Decrypt an OAEP-style ciphertext produced by :func:`rsa_encrypt`."""
    size = private_key.size_bytes
    hash_len = 32
    if len(ciphertext) != size:
        raise CryptoError("RSA ciphertext has the wrong length")
    encoded = pow(
        int.from_bytes(ciphertext, "big"),
        private_key.private_exponent,
        private_key.modulus,
    ).to_bytes(size, "big")
    if encoded[0] != 0:
        raise CryptoError("RSA decryption failed (bad leading byte)")
    masked_seed = encoded[1 : 1 + hash_len]
    masked_db = encoded[1 + hash_len :]
    seed = bytes(x ^ y for x, y in zip(masked_seed, _mgf1(masked_db, hash_len)))
    data_block = bytes(x ^ y for x, y in zip(masked_db, _mgf1(seed, len(masked_db))))
    if data_block[:hash_len] != sha256(b""):
        raise CryptoError("RSA decryption failed (label hash mismatch)")
    remainder = data_block[hash_len:]
    separator = remainder.find(b"\x01")
    if separator < 0 or any(remainder[:separator]):
        raise CryptoError("RSA decryption failed (malformed padding)")
    return remainder[separator + 1 :]
