"""Elliptic-curve cryptography over NIST P-256: ECDSA signatures and ECDH.

The ShEF chain of trust needs asymmetric primitives in three places:

* the Manufacturer's *device key* signs the Security Kernel measurement,
* the derived *Attestation Key* signs attestation reports and the session key,
* the Security Kernel and IP Vendor run a Diffie-Hellman key exchange
  (``DHKE(VerifKey, AttestKey)`` in Figure 3) to agree on a ``SessionKey``.

ECDSA/ECDH over P-256 covers all three and is fast enough in pure Python for
full protocol runs inside the test suite (scalar multiplication uses Jacobian
coordinates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashes import sha256
from repro.crypto.kdf import hkdf
from repro.errors import InvalidKeyError, SignatureError

# NIST P-256 (secp256r1) domain parameters.
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551


def _inverse_mod(value: int, modulus: int) -> int:
    """Modular inverse via Python's built-in extended-gcd pow."""
    return pow(value, -1, modulus)


@dataclass(frozen=True)
class Point:
    """An affine point on P-256; ``None`` coordinates encode the point at infinity."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def encode(self) -> bytes:
        """Uncompressed SEC1 encoding (0x04 || X || Y)."""
        if self.is_infinity:
            return b"\x00"
        return b"\x04" + self.x.to_bytes(32, "big") + self.y.to_bytes(32, "big")

    @staticmethod
    def decode(data: bytes) -> "Point":
        """Decode an uncompressed SEC1 point, validating that it is on the curve."""
        if data == b"\x00":
            return INFINITY
        if len(data) != 65 or data[0] != 0x04:
            raise InvalidKeyError("invalid P-256 point encoding")
        x = int.from_bytes(data[1:33], "big")
        y = int.from_bytes(data[33:], "big")
        point = Point(x, y)
        if not is_on_curve(point):
            raise InvalidKeyError("point is not on the P-256 curve")
        return point


INFINITY = Point(None, None)
GENERATOR = Point(GX, GY)


def is_on_curve(point: Point) -> bool:
    """Return True if ``point`` satisfies the curve equation (or is infinity)."""
    if point.is_infinity:
        return True
    return (point.y * point.y - (point.x ** 3 + A * point.x + B)) % P == 0


# ---------------------------------------------------------------------------
# Point arithmetic in Jacobian coordinates for speed.
# ---------------------------------------------------------------------------


def _to_jacobian(point: Point) -> tuple[int, int, int]:
    if point.is_infinity:
        return (0, 1, 0)
    return (point.x, point.y, 1)


def _from_jacobian(jac: tuple[int, int, int]) -> Point:
    x, y, z = jac
    if z == 0:
        return INFINITY
    z_inv = _inverse_mod(z, P)
    z_inv2 = (z_inv * z_inv) % P
    return Point((x * z_inv2) % P, (y * z_inv2 * z_inv) % P)


def _jacobian_double(jac: tuple[int, int, int]) -> tuple[int, int, int]:
    x, y, z = jac
    if z == 0 or y == 0:
        return (0, 1, 0)
    ysq = (y * y) % P
    s = (4 * x * ysq) % P
    m = (3 * x * x + A * z ** 4) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = (2 * y * z) % P
    return (nx, ny, nz)


def _jacobian_add(
    p: tuple[int, int, int], q: tuple[int, int, int]
) -> tuple[int, int, int]:
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = (z1 * z1) % P
    z2z2 = (z2 * z2) % P
    u1 = (x1 * z2z2) % P
    u2 = (x2 * z1z1) % P
    s1 = (y1 * z2 * z2z2) % P
    s2 = (y2 * z1 * z1z1) % P
    if u1 == u2:
        if s1 != s2:
            return (0, 1, 0)
        return _jacobian_double(p)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    h2 = (h * h) % P
    h3 = (h * h2) % P
    u1h2 = (u1 * h2) % P
    nx = (r * r - h3 - 2 * u1h2) % P
    ny = (r * (u1h2 - nx) - s1 * h3) % P
    nz = (h * z1 * z2) % P
    return (nx, ny, nz)


def point_add(p: Point, q: Point) -> Point:
    """Add two affine points."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p), _to_jacobian(q)))


def scalar_multiply(scalar: int, point: Point) -> Point:
    """Compute ``scalar * point`` with double-and-add in Jacobian coordinates."""
    scalar %= N
    if scalar == 0 or point.is_infinity:
        return INFINITY
    result = (0, 1, 0)
    addend = _to_jacobian(point)
    while scalar:
        if scalar & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        scalar >>= 1
    return _from_jacobian(result)


# ---------------------------------------------------------------------------
# Key pairs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EcPublicKey:
    """A P-256 public key (a curve point)."""

    point: Point

    def encode(self) -> bytes:
        return self.point.encode()

    @staticmethod
    def decode(data: bytes) -> "EcPublicKey":
        return EcPublicKey(Point.decode(data))

    def fingerprint(self) -> bytes:
        """SHA-256 of the encoded key; used as a stable identifier in certificates."""
        return sha256(self.encode())


@dataclass(frozen=True)
class EcPrivateKey:
    """A P-256 private key (a scalar) with its public counterpart."""

    scalar: int
    public_key: EcPublicKey

    def __repr__(self) -> str:  # Never print the private scalar.
        return f"EcPrivateKey(fingerprint={self.public_key.fingerprint().hex()[:16]})"

    @staticmethod
    def generate(rng: HmacDrbg) -> "EcPrivateKey":
        """Generate a key pair from the supplied deterministic RNG."""
        while True:
            scalar = rng.random_int(256) % N
            if 1 <= scalar < N:
                break
        return EcPrivateKey(scalar, EcPublicKey(scalar_multiply(scalar, GENERATOR)))

    @staticmethod
    def from_seed(seed: bytes, label: str = "ec-key") -> "EcPrivateKey":
        """Derive a key pair deterministically from seed material (key-ladder style)."""
        rng = HmacDrbg(seed, label.encode("utf-8"))
        return EcPrivateKey.generate(rng)


def generate_keypair(rng: HmacDrbg) -> EcPrivateKey:
    """Generate a fresh P-256 key pair."""
    return EcPrivateKey.generate(rng)


# ---------------------------------------------------------------------------
# ECDSA
# ---------------------------------------------------------------------------


def _deterministic_nonce(private_key: EcPrivateKey, digest: bytes) -> int:
    """RFC-6979-inspired deterministic nonce (keeps signatures reproducible)."""
    seed = private_key.scalar.to_bytes(32, "big") + digest
    rng = HmacDrbg(seed, b"ecdsa-nonce")
    while True:
        k = rng.random_int(256) % N
        if 1 <= k < N:
            return k


def ecdsa_sign(private_key: EcPrivateKey, message: bytes) -> bytes:
    """Sign ``message`` (hashed with SHA-256) and return a 64-byte (r || s) signature."""
    digest = sha256(message)
    z = int.from_bytes(digest, "big")
    while True:
        k = _deterministic_nonce(private_key, digest)
        point = scalar_multiply(k, GENERATOR)
        r = point.x % N
        if r == 0:
            digest = sha256(digest)
            continue
        s = (_inverse_mod(k, N) * (z + r * private_key.scalar)) % N
        if s == 0:
            digest = sha256(digest)
            continue
        return r.to_bytes(32, "big") + s.to_bytes(32, "big")


def ecdsa_verify(public_key: EcPublicKey, message: bytes, signature: bytes) -> bool:
    """Return True if ``signature`` is a valid ECDSA signature on ``message``."""
    if len(signature) != 64:
        return False
    r = int.from_bytes(signature[:32], "big")
    s = int.from_bytes(signature[32:], "big")
    if not (1 <= r < N and 1 <= s < N):
        return False
    if not is_on_curve(public_key.point) or public_key.point.is_infinity:
        return False
    z = int.from_bytes(sha256(message), "big")
    w = _inverse_mod(s, N)
    u1 = (z * w) % N
    u2 = (r * w) % N
    point = _from_jacobian(
        _jacobian_add(
            _to_jacobian(scalar_multiply(u1, GENERATOR)),
            _to_jacobian(scalar_multiply(u2, public_key.point)),
        )
    )
    if point.is_infinity:
        return False
    return point.x % N == r


def ecdsa_verify_strict(
    public_key: EcPublicKey, message: bytes, signature: bytes
) -> None:
    """Like :func:`ecdsa_verify` but raises :class:`SignatureError` on failure."""
    if not ecdsa_verify(public_key, message, signature):
        raise SignatureError("ECDSA signature verification failed")


# ---------------------------------------------------------------------------
# ECDH (the DHKE step of the attestation protocol).
# ---------------------------------------------------------------------------


def ecdh_shared_secret(private_key: EcPrivateKey, peer_public: EcPublicKey) -> bytes:
    """Compute the raw ECDH shared secret (the x-coordinate of the shared point)."""
    if peer_public.point.is_infinity or not is_on_curve(peer_public.point):
        raise InvalidKeyError("peer public key is not a valid curve point")
    shared = scalar_multiply(private_key.scalar, peer_public.point)
    if shared.is_infinity:
        raise InvalidKeyError("ECDH produced the point at infinity")
    return shared.x.to_bytes(32, "big")


def derive_session_key(
    private_key: EcPrivateKey,
    peer_public: EcPublicKey,
    context: bytes = b"shef-session",
    length: int = 32,
) -> bytes:
    """ECDH followed by HKDF: the ``SessionKey`` computation of Figure 3."""
    return hkdf(ecdh_shared_secret(private_key, peer_public), length, info=context)
