"""Authenticated encryption in encrypt-then-MAC form.

This is the exact construction the Shield applies to every C_mem chunk
(Section 5.2 of the paper): AES-CTR for confidentiality, then a MAC computed
over the ciphertext *and* its binding context (chunk address, counter) so that
spoofing and splicing attacks are detected.  The same construction, with the
address context replaced by a message sequence number, protects the host <->
Shield register channel and the attestation session traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import AES
from repro.crypto.kdf import derive_subkey
from repro.crypto.mac import MAC_TAG_SIZES, compute_mac, constant_time_equal
from repro.crypto.modes import ctr_transform
from repro.errors import IntegrityError


@dataclass(frozen=True)
class AuthenticatedMessage:
    """Ciphertext plus its authentication tag and the IV used."""

    iv: bytes
    ciphertext: bytes
    tag: bytes

    def serialize(self) -> bytes:
        """Flat wire encoding: iv || 4-byte ct length || ct || tag."""
        return self.iv + len(self.ciphertext).to_bytes(4, "big") + self.ciphertext + self.tag

    @staticmethod
    def deserialize(data: bytes, tag_size: int = 32) -> "AuthenticatedMessage":
        if len(data) < 16 + tag_size:
            raise IntegrityError("authenticated message too short")
        iv = data[:12]
        ct_len = int.from_bytes(data[12:16], "big")
        ciphertext = data[16 : 16 + ct_len]
        tag = data[16 + ct_len :]
        if len(ciphertext) != ct_len or len(tag) != tag_size:
            raise IntegrityError("authenticated message framing is inconsistent")
        return AuthenticatedMessage(iv, ciphertext, tag)


class AuthenticatedCipher:
    """Encrypt-then-MAC AEAD over AES-CTR and a configurable MAC engine.

    Parameters
    ----------
    key:
        Master symmetric key; independent encryption and MAC sub-keys are
        derived from it so the CTR and MAC keys are never shared.
    mac_algorithm:
        ``"HMAC"`` (default, 32-byte tags), ``"PMAC"`` or ``"CMAC"`` (16-byte
        tags) -- mirroring the Shield's configurable authentication engine.
    """

    def __init__(self, key: bytes, mac_algorithm: str = "HMAC"):
        if mac_algorithm not in MAC_TAG_SIZES:
            raise IntegrityError(f"unknown MAC algorithm {mac_algorithm!r}")
        self.mac_algorithm = mac_algorithm
        self.tag_size = MAC_TAG_SIZES[mac_algorithm]
        enc_key = derive_subkey(key, "authenc-encrypt", len(key))
        mac_key = derive_subkey(key, "authenc-mac", 32)
        self._cipher = AES(enc_key)
        self._mac_key = mac_key if mac_algorithm == "HMAC" else mac_key[:16]

    def seal(
        self, iv: bytes, plaintext: bytes, associated_data: bytes = b""
    ) -> AuthenticatedMessage:
        """Encrypt ``plaintext`` and authenticate it together with ``associated_data``."""
        ciphertext = ctr_transform(self._cipher, iv, plaintext)
        tag = compute_mac(
            self.mac_algorithm, self._mac_key, associated_data + iv + ciphertext
        )
        return AuthenticatedMessage(iv, ciphertext, tag)

    def open(
        self, message: AuthenticatedMessage, associated_data: bytes = b""
    ) -> bytes:
        """Verify and decrypt; raises :class:`IntegrityError` on any tampering."""
        expected = compute_mac(
            self.mac_algorithm,
            self._mac_key,
            associated_data + message.iv + message.ciphertext,
        )
        if not constant_time_equal(expected, message.tag):
            raise IntegrityError(
                f"{self.mac_algorithm} tag mismatch: ciphertext or context tampered"
            )
        return ctr_transform(self._cipher, message.iv, message.ciphertext)
