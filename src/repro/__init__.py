"""ShEF: Shielded Enclaves for Cloud FPGAs -- a Python reproduction.

This package reproduces the ShEF framework (Zhao, Gao, Kozyrakis, ASPLOS 2022)
in simulation: a from-scratch cryptographic substrate, a simulated cloud FPGA
(fuses, SPB, fabric, Shell, DRAM), the secure-boot chain and remote-attestation
protocol, the configurable Shield, the paper's evaluation accelerators, an
adversary library, and the experiment harness that regenerates every table and
figure of the evaluation.

Quick start::

    from repro import deploy_accelerator
    from repro.accelerators import VectorAddAccelerator

    accelerator = VectorAddAccelerator()
    deployment = deploy_accelerator("vector_add", accelerator.build_shield_config())
"""

from repro.workflow import Deployment, deploy_accelerator

__version__ = "1.0.0"

__all__ = ["Deployment", "deploy_accelerator", "__version__"]
