"""Shared percentile/summary math for every reporting surface.

Percentile code used to be on the verge of growing three times over -- once
for the metrics histograms, once for ``trace-report``, and once for the
simulator's experiment metadata -- each with its own answer to the awkward
questions (empty series, a single sample, q exactly 0 or 100).  This module
is the single implementation all of them import, with the edge-case semantics
spelled out:

* an **empty series** has no percentiles: :func:`percentile` returns ``None``
  and :func:`summarize` reports ``count == 0`` with every statistic ``None``;
* a **single sample** *is* every percentile (p0 == p50 == p100 == the sample);
* between samples, percentiles use **linear interpolation** on the sorted
  series (the numpy default), so p50 of ``[1, 2]`` is ``1.5``.
"""

from __future__ import annotations

#: The quantiles every summary reports, in display order.
SUMMARY_QUANTILES = (50.0, 95.0, 99.0)


def percentile(values, q: float):
    """The q-th percentile (0 <= q <= 100) of a series, or ``None`` if empty.

    Linear interpolation between closest ranks on the sorted series; the
    input need not be sorted and is never mutated.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    data = sorted(values)
    if not data:
        return None
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    fraction = rank - low
    return data[low] + (data[high] - data[low]) * fraction


def percentiles(values, qs=SUMMARY_QUANTILES) -> dict:
    """Several percentiles of one series in a single sort pass.

    Returns ``{"p50": ..., "p95": ..., ...}`` with ``None`` values for an
    empty series (the keys are always present, so callers can rely on the
    shape).
    """
    data = sorted(values)
    out = {}
    for q in qs:
        key = f"p{q:g}".replace(".", "_")
        out[key] = percentile(data, q) if data else None
    return out


def mean(values):
    """Arithmetic mean, or ``None`` for an empty series."""
    data = list(values)
    if not data:
        return None
    return sum(data) / len(data)


def summarize(values, qs=SUMMARY_QUANTILES) -> dict:
    """The standard summary block: count/total/min/mean/max plus percentiles.

    The dict shape is fixed regardless of input: an empty series yields
    ``count == 0``, ``total == 0.0``, and ``None`` for every order statistic.
    """
    data = sorted(values)
    summary = {
        "count": len(data),
        "total": float(sum(data)),
        "min": data[0] if data else None,
        "mean": (sum(data) / len(data)) if data else None,
        "max": data[-1] if data else None,
    }
    summary.update(percentiles(data, qs))
    return summary
