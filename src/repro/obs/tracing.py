"""The span tracer: one structured event stream for the whole Shield fleet.

Every event carries the same flat schema -- a timestamp, a kind, a name, an
optional duration, and the identity axes (tenant / session / job / board) --
so functional runs (wall-clock timestamps) and simulated runs (modelled
timestamps) produce streams that are directly diffable and feed the same
exporters (:mod:`repro.obs.exporters`) and reports (:mod:`repro.obs.report`).

Three event kinds cover the fleet:

* ``span`` -- a named stage with a duration (the job lifecycle:
  ``admit -> queue -> place -> shield_load -> input_seal -> execute ->
  download -> output_unseal``, plus a per-job envelope span ``job``);
* ``mark`` -- an instantaneous annotation (a submit, a rejection);
* ``security`` -- the audit stream (DMA-tap observations, MAC failures,
  warm-Shield evictions, attack detections, plaintext exposures).

:class:`NullTracer` is the disabled backend: recording is a no-op and the
hot path pays one attribute check (``tracer.enabled``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: The job lifecycle stages, in the order both the functional service and the
#: simulator emit them for every job.  ``admit`` is per *session* (it happens
#: once, at tenant admission); the rest are per job.
LIFECYCLE_STAGES = (
    "admit",
    "queue",
    "place",
    "shield_load",
    "input_seal",
    "execute",
    "download",
    "output_unseal",
)

#: The per-job subset of :data:`LIFECYCLE_STAGES` (what conformance compares).
JOB_STAGES = LIFECYCLE_STAGES[1:]

#: Extra stages the async serving front-end (:mod:`repro.serve`) emits on top
#: of the lifecycle: ``enqueue`` (front-end admission: rate-limit/shed checks
#: + handoff to the scheduler queue) and ``executor_handoff`` (job placed on
#: the event loop -> its crypto/execute body starts on an executor thread).
#: Kept separate from :data:`LIFECYCLE_STAGES` so functional-vs-simulated
#: lifecycle signatures stay comparable (the simulator does not model the
#: front-end).  Backpressure outcomes appear as marks on the same stream:
#: ``ratelimited`` (token bucket empty) and ``shed`` (queue-depth load shed).
SERVE_STAGES = (
    "enqueue",
    "executor_handoff",
)

SPAN = "span"
MARK = "mark"
SECURITY = "security"

EVENT_KINDS = (SPAN, MARK, SECURITY)


@dataclass(slots=True)
class ObsEvent:
    """One structured event on the trace stream (the exporter wire schema)."""

    ts: float
    kind: str
    name: str
    dur_s: float | None = None
    tenant: str | None = None
    session: str | None = None
    job: str | None = None
    board: str | None = None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The flat JSONL form; identity axes are omitted when unset."""
        out = {"ts": self.ts, "kind": self.kind, "name": self.name}
        if self.dur_s is not None:
            out["dur_s"] = self.dur_s
        for axis in ("tenant", "session", "job", "board"):
            value = getattr(self, axis)
            if value is not None:
                out[axis] = value
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "ObsEvent":
        return cls(
            ts=float(payload["ts"]),
            kind=payload["kind"],
            name=payload["name"],
            dur_s=payload.get("dur_s"),
            tenant=payload.get("tenant"),
            session=payload.get("session"),
            job=payload.get("job"),
            board=payload.get("board"),
            attrs=dict(payload.get("attrs", {})),
        )


class _OpenSpan:
    """A live wall-clock span handed out by :meth:`Tracer.span`."""

    __slots__ = ("name", "tenant", "session", "job", "board", "attrs", "start")

    def __init__(self, name, tenant, session, job, board, attrs, start):
        self.name = name
        self.tenant = tenant
        self.session = session
        self.job = job
        self.board = board
        self.attrs = attrs
        self.start = start

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (bytes moved, warm/cold...)."""
        self.attrs.update(attrs)


class Tracer:
    """Records :class:`ObsEvent` objects against a pluggable clock.

    ``clock`` defaults to :func:`time.perf_counter` (wall time measured from
    tracer creation); the simulator bypasses the clock entirely and stamps
    events with modelled time via the ``ts``-taking record methods.
    """

    enabled = True

    def __init__(self, clock=None):
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        self.events: list[ObsEvent] = []

    def now(self) -> float:
        """Seconds since tracer creation on the configured clock."""
        return self._clock() - self._epoch

    # -- recording ----------------------------------------------------------------

    @contextmanager
    def span(self, name, tenant=None, session=None, job=None, board=None, **attrs):
        """Measure a wall-clock stage; the yielded span accepts ``.set(...)``."""
        open_span = _OpenSpan(name, tenant, session, job, board, dict(attrs), self.now())
        try:
            yield open_span
        finally:
            self.events.append(
                ObsEvent(
                    ts=open_span.start,
                    kind=SPAN,
                    name=open_span.name,
                    dur_s=self.now() - open_span.start,
                    tenant=open_span.tenant,
                    session=open_span.session,
                    job=open_span.job,
                    board=open_span.board,
                    attrs=open_span.attrs,
                )
            )

    def record_span(
        self, name, ts, dur_s, tenant=None, session=None, job=None, board=None, **attrs
    ) -> None:
        """Record a span with explicit timestamps (simulated or aggregated time)."""
        self.events.append(
            ObsEvent(ts, SPAN, name, dur_s, tenant, session, job, board, attrs)
        )

    def mark(self, name, ts=None, tenant=None, session=None, job=None, board=None, **attrs):
        """Record an instantaneous annotation."""
        self.events.append(
            ObsEvent(
                self.now() if ts is None else ts,
                MARK, name, None, tenant, session, job, board, attrs,
            )
        )

    def security(
        self, name, ts=None, tenant=None, session=None, job=None, board=None, **attrs
    ) -> None:
        """Record a security event (audit stream, same schema)."""
        self.events.append(
            ObsEvent(
                self.now() if ts is None else ts,
                SECURITY, name, None, tenant, session, job, board, attrs,
            )
        )

    # -- reading ------------------------------------------------------------------

    def spans(self, name=None) -> list:
        """All span events, optionally filtered by stage name."""
        return [
            e for e in self.events if e.kind == SPAN and (name is None or e.name == name)
        ]

    def security_events(self, name=None) -> list:
        """All security events, optionally filtered by name."""
        return [
            e
            for e in self.events
            if e.kind == SECURITY and (name is None or e.name == name)
        ]

    def clear(self) -> None:
        self.events = []


class _NullSpan:
    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled backend: every record call is a no-op."""

    enabled = False
    events: tuple = ()

    def now(self) -> float:
        return 0.0

    def span(self, name, **kwargs):
        return _NULL_SPAN

    def record_span(self, name, ts, dur_s, **kwargs) -> None:
        pass

    def mark(self, name, **kwargs) -> None:
        pass

    def security(self, name, **kwargs) -> None:
        pass

    def spans(self, name=None) -> list:
        return []

    def security_events(self, name=None) -> list:
        return []

    def clear(self) -> None:
        pass


def lifecycle_signature(events, stages=JOB_STAGES) -> list:
    """The schedulable skeleton of a trace: per-job stage order + attribution.

    Returns ``(name, tenant, warm-or-None)`` tuples for every span whose name
    is in ``stages``, in stream order.  Functional service and simulator runs
    of the same trace under the same policy must produce identical signatures
    -- this is what the observability conformance suite diffs (timestamps and
    durations are *expected* to differ between wall and simulated clocks).
    """
    wanted = set(stages)
    return [
        (event.name, event.tenant, event.attrs.get("warm"))
        for event in events
        if event.kind == SPAN and event.name in wanted
    ]
