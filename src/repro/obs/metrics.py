"""The process-wide metrics registry: counters, gauges, and histograms.

Instruments are cheap, label-aware, and deterministic:

* :class:`Counter` -- a monotonically increasing float (``.inc()``);
* :class:`Gauge` -- a point-in-time level (``.set()`` / ``.inc()`` / ``.dec()``);
* :class:`Histogram` -- a reservoir-sampled distribution whose percentiles
  come from :mod:`repro.obs.stats`; the reservoir (Vitter's Algorithm R,
  seeded per instrument) keeps a bounded, uniformly-sampled view of an
  unbounded series, while ``count``/``total``/``min``/``max`` stay exact.

A :class:`MetricsRegistry` hands out instruments keyed by ``(name, labels)``
and renders a Prometheus-style text dump; :class:`NullMetricsRegistry` hands
out shared no-op instruments so fully disabled observability costs one
attribute check on the hot path.
"""

from __future__ import annotations

import random
import threading

from repro.obs.stats import SUMMARY_QUANTILES, percentile, summarize

#: Default reservoir capacity per histogram (exact below this many samples).
DEFAULT_RESERVOIR_SIZE = 1024


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing counter.

    Updates are lock-protected: the async serving front-end increments
    counters from executor threads (one per board), and a bare ``+=`` is a
    read-modify-write that can drop increments under contention.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time level (queue depth, boards busy, ...)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """A reservoir-backed distribution with exact count/total/min/max.

    Below ``reservoir_size`` observations the reservoir holds every sample
    (percentiles are exact); beyond it, Algorithm R keeps each observation
    with probability ``reservoir_size / count`` so the reservoir stays a
    uniform sample.  The RNG is seeded from the instrument identity, so two
    identically-fed histograms report identical percentiles.
    """

    __slots__ = (
        "name", "labels", "count", "total", "min", "max",
        "_reservoir", "_rng", "_capacity", "_lock",
    )

    def __init__(self, name: str, labels: dict, reservoir_size: int = DEFAULT_RESERVOIR_SIZE):
        if reservoir_size < 1:
            raise ValueError("histogram reservoir_size must be positive")
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._reservoir: list = []
        self._capacity = reservoir_size
        self._rng = random.Random(hash((name, _label_key(labels))) & 0xFFFFFFFF)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._reservoir) < self._capacity:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self._capacity:
                    self._reservoir[slot] = value

    @property
    def mean(self):
        return self.total / self.count if self.count else None

    def percentile(self, q: float):
        """The q-th percentile of the reservoir sample (``None`` if empty)."""
        return percentile(self._reservoir, q)

    def summary(self, qs=SUMMARY_QUANTILES) -> dict:
        """The standard summary block; count/total/min/max are exact."""
        block = summarize(self._reservoir, qs)
        block.update(
            count=self.count, total=self.total, min=self.min, max=self.max, mean=self.mean
        )
        return block


class _NullInstrument:
    """A shared do-nothing counter/gauge/histogram for disabled observability."""

    __slots__ = ()
    name = "null"
    labels: dict = {}
    value = 0.0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = None

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float):
        return None

    def summary(self, qs=SUMMARY_QUANTILES) -> dict:
        return summarize((), qs)


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Hands out (and caches) instruments keyed by name + label set.

    Instrument creation is lock-protected so threads sharing a registry (the
    async front-end's executor workers) never race two instances of the same
    instrument into the cache; the fast path (cache hit) stays lock-free.
    """

    enabled = True

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR_SIZE):
        self._reservoir_size = reservoir_size
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._lock = threading.Lock()

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter(name, labels))
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(name, labels))
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(name, labels, self._reservoir_size)
                )
        return instrument

    # -- aggregation ---------------------------------------------------------------

    def counter_total(self, name: str) -> float:
        """Sum of one counter name across every label set (0.0 if absent)."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def counters_by_label(self, name: str, label: str) -> dict:
        """``label value -> counter value`` for one counter name."""
        return {
            c.labels[label]: c.value
            for (n, _), c in self._counters.items()
            if n == name and label in c.labels
        }

    def snapshot(self) -> dict:
        """Everything the registry holds, as plain data (for tests/exports)."""
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self._counters.values()
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in self._gauges.values()
            ],
            "histograms": [
                {"name": h.name, "labels": dict(h.labels), **h.summary()}
                for h in self._histograms.values()
            ],
        }


class NullMetricsRegistry:
    """The disabled backend: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, **labels):
        return NULL_INSTRUMENT

    def gauge(self, name: str, **labels):
        return NULL_INSTRUMENT

    def histogram(self, name: str, **labels):
        return NULL_INSTRUMENT

    def counter_total(self, name: str) -> float:
        return 0.0

    def counters_by_label(self, name: str, label: str) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}
