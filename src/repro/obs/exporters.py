"""Exporters for the trace stream and the metrics registry.

Three formats cover the consumers:

* **JSONL** -- one :class:`~repro.obs.tracing.ObsEvent` dict per line; the
  archival format ``--trace`` writes, ``trace-report`` reads, and CI uploads;
* **Chrome trace** -- the ``chrome://tracing`` / Perfetto JSON format
  (``traceEvents`` with microsecond timestamps); spans become complete
  (``ph: "X"``) events on a ``tenant`` process / ``board-or-session`` thread,
  marks and security events become instants (``ph: "i"``);
* **Prometheus text** -- a one-shot ``/metrics``-style dump of the registry
  (counters as ``_total``, gauges verbatim, histograms as summaries with
  ``quantile`` labels plus ``_count`` / ``_sum``).
"""

from __future__ import annotations

import json

from repro.obs.tracing import EVENT_KINDS, ObsEvent

#: Keys every JSONL event must carry (the rest of the schema is optional).
REQUIRED_EVENT_KEYS = ("ts", "kind", "name")


def validate_event(payload: dict) -> list:
    """Schema-check one event dict; returns a list of problems (empty == valid)."""
    problems = []
    for key in REQUIRED_EVENT_KEYS:
        if key not in payload:
            problems.append(f"missing required key {key!r}")
    if not isinstance(payload.get("ts"), (int, float)):
        problems.append(f"ts must be a number, got {payload.get('ts')!r}")
    if payload.get("kind") not in EVENT_KINDS:
        problems.append(f"kind must be one of {EVENT_KINDS}, got {payload.get('kind')!r}")
    if not isinstance(payload.get("name"), str) or not payload.get("name"):
        problems.append(f"name must be a non-empty string, got {payload.get('name')!r}")
    dur = payload.get("dur_s")
    if dur is not None and not isinstance(dur, (int, float)):
        problems.append(f"dur_s must be a number or absent, got {dur!r}")
    for axis in ("tenant", "session", "job", "board"):
        value = payload.get(axis)
        if value is not None and not isinstance(value, str):
            problems.append(f"{axis} must be a string or absent, got {value!r}")
    if "attrs" in payload and not isinstance(payload["attrs"], dict):
        problems.append(f"attrs must be a dict, got {payload['attrs']!r}")
    return problems


def events_to_jsonl(events) -> str:
    """Serialize a list of events (ObsEvent or dict) to JSONL text."""
    lines = []
    for event in events:
        payload = event.to_dict() if isinstance(event, ObsEvent) else dict(event)
        lines.append(json.dumps(payload, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events, path) -> None:
    """Write the event stream to a JSONL file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(events_to_jsonl(events))


def read_jsonl(path, strict: bool = True) -> list:
    """Read a JSONL trace back into :class:`ObsEvent` objects.

    With ``strict`` (the default) a malformed line raises ``ValueError``
    naming the line number and the schema problems; without it, malformed
    lines are skipped (they cannot be parsed into a typed event).
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            problems = validate_event(payload)
            if problems:
                if strict:
                    raise ValueError(
                        f"{path}:{line_number}: invalid trace event: "
                        f"{'; '.join(problems)}"
                    )
                continue
            events.append(ObsEvent.from_dict(payload))
    return events


def chrome_trace_dict(events) -> dict:
    """The ``chrome://tracing`` JSON object for an event stream.

    Processes are tenants (or ``fleet`` for unattributed events); threads are
    boards when known, sessions otherwise.  Timestamps are microseconds, as
    the format requires.
    """
    trace_events = []
    for event in events:
        if isinstance(event, dict):
            event = ObsEvent.from_dict(event)
        pid = event.tenant or "fleet"
        tid = event.board or event.session or "service"
        args = dict(event.attrs)
        for axis in ("session", "job"):
            value = getattr(event, axis)
            if value is not None:
                args[axis] = value
        entry = {
            "name": event.name,
            "cat": event.kind,
            "pid": pid,
            "tid": tid,
            "ts": event.ts * 1e6,
            "args": args,
        }
        if event.kind == "span":
            entry["ph"] = "X"
            entry["dur"] = (event.dur_s or 0.0) * 1e6
        else:
            entry["ph"] = "i"
            entry["s"] = "p"  # process-scoped instant
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events, path) -> None:
    """Write the event stream as a ``chrome://tracing``-loadable JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace_dict(events), handle, indent=1)
        handle.write("\n")


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{_prom_name(str(k))}="{v}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


def prometheus_text(registry) -> str:
    """A Prometheus-exposition-style text dump of a metrics registry."""
    snapshot = registry.snapshot()
    lines = []
    seen_types = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in snapshot["counters"]:
        name = _prom_name(counter["name"]) + "_total"
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(counter['labels'])} {counter['value']:g}")
    for gauge in snapshot["gauges"]:
        name = _prom_name(gauge["name"])
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(gauge['labels'])} {gauge['value']:g}")
    for histogram in snapshot["histograms"]:
        name = _prom_name(histogram["name"])
        type_line(name, "summary")
        labels = histogram["labels"]
        for key, quantile in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            value = histogram.get(key)
            if value is not None:
                lines.append(
                    f"{name}{_prom_labels(labels, {'quantile': quantile})} {value:g}"
                )
        lines.append(f"{name}_count{_prom_labels(labels)} {histogram['count']:g}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {histogram['total']:g}")
    return "\n".join(lines) + ("\n" if lines else "")
