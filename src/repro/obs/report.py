"""``trace-report``: render per-stage percentiles and per-tenant totals.

Consumes the JSONL event stream (or live :class:`~repro.obs.tracing.ObsEvent`
lists) and prints the two tables an operator asks for first:

* **per-stage latency** -- count, total, and p50/p95/p99 of every span name
  on the stream, lifecycle stages first in lifecycle order;
* **per-tenant breakdown** -- jobs, busy seconds, share of fleet busy time,
  and security-event count per tenant.

Works identically on functional traces (wall seconds) and simulated traces
(modelled seconds); the shared math lives in :mod:`repro.obs.stats`.
"""

from __future__ import annotations

from repro.obs.stats import summarize
from repro.obs.tracing import LIFECYCLE_STAGES, SECURITY, SERVE_STAGES, SPAN

#: Report ordering: lifecycle stages first, then the serving front-end's
#: stages, then anything else alphabetically.
_KNOWN_STAGES = LIFECYCLE_STAGES + SERVE_STAGES


def _stage_order(name: str) -> tuple:
    try:
        return (0, _KNOWN_STAGES.index(name))
    except ValueError:
        return (1, 0)


def stage_summaries(events) -> dict:
    """``stage name -> duration summary`` over every span on the stream."""
    durations: dict = {}
    for event in events:
        if event.kind == SPAN:
            durations.setdefault(event.name, []).append(event.dur_s or 0.0)
    return {
        name: summarize(values)
        for name, values in sorted(
            durations.items(), key=lambda item: (_stage_order(item[0]), item[0])
        )
    }


def tenant_breakdown(events) -> dict:
    """``tenant -> {jobs, busy_s, security_events}`` (jobs = ``job`` spans)."""
    tenants: dict = {}

    def entry(tenant):
        return tenants.setdefault(
            tenant, {"jobs": 0, "busy_s": 0.0, "security_events": 0}
        )

    for event in events:
        if event.tenant is None:
            continue
        if event.kind == SPAN and event.name == "job":
            record = entry(event.tenant)
            record["jobs"] += 1
            record["busy_s"] += event.dur_s or 0.0
        elif event.kind == SECURITY:
            entry(event.tenant)["security_events"] += 1
    total_busy = sum(record["busy_s"] for record in tenants.values())
    for record in tenants.values():
        record["busy_share"] = record["busy_s"] / total_busy if total_busy else 0.0
    return dict(sorted(tenants.items()))


def render_trace_report(events) -> str:
    """The full plain-text report for a trace stream."""
    from repro.sim.reporting import format_table, format_value

    events = list(events)
    lines = [f"== trace report: {len(events)} event(s) =="]

    stages = stage_summaries(events)
    if stages:
        lines.append("")
        lines.append("per-stage latency (seconds):")
        lines.append(
            format_table(
                [
                    {
                        "stage": name,
                        "count": summary["count"],
                        "total_s": summary["total"],
                        "p50_s": summary["p50"] if summary["p50"] is not None else "",
                        "p95_s": summary["p95"] if summary["p95"] is not None else "",
                        "p99_s": summary["p99"] if summary["p99"] is not None else "",
                    }
                    for name, summary in stages.items()
                ]
            )
        )
    tenants = tenant_breakdown(events)
    if tenants:
        lines.append("")
        lines.append("per-tenant totals:")
        lines.append(
            format_table(
                [
                    {
                        "tenant": tenant,
                        "jobs": record["jobs"],
                        "busy_s": record["busy_s"],
                        "busy_share": record["busy_share"],
                        "security_events": record["security_events"],
                    }
                    for tenant, record in tenants.items()
                ]
            )
        )
    security = [e for e in events if e.kind == SECURITY]
    if security:
        by_name: dict = {}
        for event in security:
            by_name[event.name] = by_name.get(event.name, 0) + 1
        lines.append("")
        lines.append("security events:")
        for name, count in sorted(by_name.items()):
            lines.append(f"  {name}: {format_value(count)}")
    return "\n".join(lines)
