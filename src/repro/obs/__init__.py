"""``repro.obs``: metrics + tracing for the Shield fleet.

The observability substrate has two halves, bundled by :class:`Observability`:

* a **metrics registry** (:mod:`repro.obs.metrics`) -- counters, gauges, and
  reservoir-backed histograms with p50/p95/p99, rendered as a
  Prometheus-style text dump;
* a **span tracer** (:mod:`repro.obs.tracing`) -- the structured event stream
  covering the job lifecycle and the security audit trail, exported as JSONL
  or a ``chrome://tracing`` file (:mod:`repro.obs.exporters`) and rendered by
  ``trace-report`` (:mod:`repro.obs.report`).

The process-wide default is the **null backend** (:data:`NULL_OBS`): every
record call is a no-op and instrumented code pays one attribute check, so the
hot path stays within noise when observability is off (gated by
``benchmarks/test_obs_overhead.py``).  Enable it for a run with::

    import repro.obs as obs

    handle = obs.configure()            # metrics + tracing on, wall clock
    ...                                  # build services, run jobs
    print(handle.tracer.events)          # or export via repro.obs.exporters
    obs.reset()                          # back to the null backend

or scope it with :func:`scoped` (what the tests and benchmarks use).
Instrumented objects (``ShieldCloudService``, ``Shield``, ``RegionSealer``,
``CloudSimulator``) snapshot :func:`current` **at construction time**, so
configure observability before building the objects you want instrumented --
or pass an :class:`Observability` explicitly via their ``obs=`` parameter.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.tracing import (
    JOB_STAGES,
    LIFECYCLE_STAGES,
    SERVE_STAGES,
    NullTracer,
    ObsEvent,
    Tracer,
    lifecycle_signature,
)

__all__ = [
    "JOB_STAGES",
    "LIFECYCLE_STAGES",
    "SERVE_STAGES",
    "MetricsRegistry",
    "NULL_OBS",
    "NullMetricsRegistry",
    "NullTracer",
    "ObsEvent",
    "Observability",
    "Tracer",
    "configure",
    "current",
    "lifecycle_signature",
    "reset",
    "scoped",
]


class Observability:
    """A metrics registry and a tracer travelling together."""

    __slots__ = ("metrics", "tracer")

    def __init__(self, metrics=None, tracer=None):
        self.metrics = metrics if metrics is not None else NullMetricsRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()

    @property
    def enabled(self) -> bool:
        """True when either half records anything (hot paths check this once)."""
        return self.metrics.enabled or self.tracer.enabled


#: The disabled backend every instrumented object sees by default.
NULL_OBS = Observability()

_current: Observability = NULL_OBS


def current() -> Observability:
    """The process-wide observability handle (``NULL_OBS`` unless configured)."""
    return _current


def configure(metrics: bool = True, tracing: bool = True, clock=None) -> Observability:
    """Install (and return) a live process-wide observability handle.

    ``metrics`` / ``tracing`` enable each half independently; ``clock``
    overrides the tracer's wall clock (tests pass a fake for determinism).
    """
    global _current
    _current = Observability(
        metrics=MetricsRegistry() if metrics else NullMetricsRegistry(),
        tracer=Tracer(clock=clock) if tracing else NullTracer(),
    )
    return _current


def reset() -> None:
    """Back to the null backend (does not touch handles already snapshot)."""
    global _current
    _current = NULL_OBS


@contextmanager
def scoped(metrics: bool = True, tracing: bool = True, clock=None):
    """Configure observability for a ``with`` block, restoring the old handle."""
    global _current
    previous = _current
    handle = configure(metrics=metrics, tracing=tracing, clock=clock)
    try:
        yield handle
    finally:
        _current = previous
