"""Exception hierarchy for the ShEF reproduction.

Every error raised by the library derives from :class:`ShefError` so that
callers can catch library failures with a single ``except`` clause while the
more specific subclasses keep security failures (integrity, attestation,
authentication) distinguishable from plain configuration or usage mistakes.
"""

from __future__ import annotations


class ShefError(Exception):
    """Base class for all errors raised by the ShEF reproduction."""


class ConfigurationError(ShefError):
    """A component was configured with invalid or inconsistent parameters."""


class CryptoError(ShefError):
    """Base class for failures inside the cryptographic substrate."""


class InvalidKeyError(CryptoError):
    """A key had the wrong length, type, or format."""


class SignatureError(CryptoError):
    """A digital signature failed to verify."""


class IntegrityError(CryptoError):
    """A MAC tag or hash check failed (data was tampered with)."""


class PaddingError(CryptoError):
    """Ciphertext padding was malformed during unpadding."""


class DeviceError(ShefError):
    """Base class for errors raised by the simulated FPGA hardware."""


class FuseError(DeviceError):
    """Illegal access to the one-time-programmable key fuses."""


class MemoryAccessError(DeviceError):
    """An out-of-bounds or misaligned access to device or on-chip memory."""


class CapacityError(DeviceError):
    """An on-chip memory allocation exceeded the available capacity."""


class FabricError(DeviceError):
    """Partial-reconfiguration or fabric-region management failure."""


class TamperError(DeviceError):
    """A hardware tamper monitor (JTAG, programming port) fired."""


class BootError(ShefError):
    """Secure-boot chain failure (firmware decryption, measurement, load)."""


class BitstreamError(ShefError):
    """A bitstream container was malformed, unauthentic, or undecryptable."""


class AttestationError(ShefError):
    """The remote-attestation protocol failed or a report was rejected."""


class ReplayError(IntegrityError):
    """Stale data was returned for a read (replay attack detected)."""


class ShieldError(ShefError):
    """Runtime failure inside the Shield (unmapped address, missing key)."""


class ProtocolError(ShefError):
    """A message arrived out of order or with an unexpected type."""


class SimulationError(ShefError):
    """The experiment harness was driven with inconsistent inputs."""


class CloudError(ShefError):
    """Failure inside the multi-tenant cloud serving layer."""


class SchedulingError(CloudError):
    """A job could not be queued or placed on the board fleet."""


class AdmissionError(SchedulingError):
    """A job was refused at submit time by admission control (backpressure):
    the fleet-wide queue cap or the submitting tenant's queue quota was hit.
    The job object carries ``JobState.REJECTED`` and the reason."""


class TenantIsolationError(CloudError):
    """An operation would have crossed a tenant-isolation boundary."""


class ShardingError(CloudError):
    """The shard router or multi-fleet replay driver was misused (unknown
    shard, empty ring, duplicate shard id)."""
