"""Adversary library: the attacks the ShEF threat model defends against.

Memory attacks (spoof/splice/replay on DRAM), malicious-Shell attacks (AXI
snooping and tampering), and attestation man-in-the-middle attacks on the
untrusted host channel.  These are used by the security test suite and the
attack-demonstration example.
"""

from repro.attacks.bus_attacks import SnoopingShellAttack, SnoopRecord, TamperingShellAttack
from repro.attacks.memory_attacks import (
    ChunkSnapshot,
    corrupt_tag,
    read_chunk_raw,
    replay_chunk,
    snoop_region,
    splice_chunks,
    spoof_chunk,
)
from repro.attacks.mitm import (
    ReplayRecorder,
    corrupt_report_hook,
    drop_key_delivery_hook,
    redirect_load_key_hook,
    swap_bitstream_hash_hook,
)

__all__ = [
    "SnoopingShellAttack",
    "SnoopRecord",
    "TamperingShellAttack",
    "ChunkSnapshot",
    "corrupt_tag",
    "read_chunk_raw",
    "replay_chunk",
    "snoop_region",
    "splice_chunks",
    "spoof_chunk",
    "ReplayRecorder",
    "corrupt_report_hook",
    "drop_key_delivery_hook",
    "redirect_load_key_hook",
    "swap_bitstream_hash_hook",
]
