"""Adversarial attacks on device DRAM: spoofing, splicing, and replay.

The paper's threat model lets the adversary perform physical attacks on the
off-chip memory bus or intercept traffic through the Shell.  These helpers
modify raw DRAM contents exactly as such an attacker would:

* **spoofing** -- overwrite a chunk's ciphertext with attacker-chosen bytes,
* **splicing** -- copy a valid (ciphertext, tag) pair from one address to
  another, hoping the Shield accepts data that is authentic but misplaced,
* **replay** -- snapshot a chunk and restore it after the accelerator has
  overwritten it, so stale-but-authentic data is returned on the next read.

The Shield's MAC binds the chunk address (defeats spoof/splice) and, for
replay-protected regions, the on-chip counter value (defeats replay); the
attack tests assert that every one of these raises
:class:`~repro.errors.IntegrityError` / :class:`~repro.errors.ReplayError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MAC_TAG_BYTES, RegionConfig, ShieldConfig
from repro.hw.memory import DeviceMemory


@dataclass
class ChunkSnapshot:
    """A saved (ciphertext, tag) pair for a later replay."""

    region_name: str
    chunk_index: int
    ciphertext: bytes
    tag: bytes


def _chunk_address(region: RegionConfig, chunk_index: int) -> int:
    return region.base_address + chunk_index * region.chunk_size


def read_chunk_raw(
    memory: DeviceMemory, config: ShieldConfig, region_name: str, chunk_index: int
) -> ChunkSnapshot:
    """Snapshot a chunk's current ciphertext and tag straight out of DRAM."""
    region = config.region(region_name)
    ciphertext = memory.tamper_read(_chunk_address(region, chunk_index), region.chunk_size)
    tag = memory.tamper_read(config.tag_address(region, chunk_index), MAC_TAG_BYTES)
    return ChunkSnapshot(
        region_name=region_name, chunk_index=chunk_index, ciphertext=ciphertext, tag=tag
    )


def spoof_chunk(
    memory: DeviceMemory,
    config: ShieldConfig,
    region_name: str,
    chunk_index: int,
    pattern: int = 0xA5,
) -> None:
    """Overwrite a chunk's ciphertext with attacker-chosen bytes (tag untouched)."""
    region = config.region(region_name)
    memory.tamper_write(
        _chunk_address(region, chunk_index), bytes([pattern]) * region.chunk_size
    )


def corrupt_tag(
    memory: DeviceMemory, config: ShieldConfig, region_name: str, chunk_index: int
) -> None:
    """Flip every bit of a chunk's MAC tag in DRAM."""
    region = config.region(region_name)
    address = config.tag_address(region, chunk_index)
    tag = memory.tamper_read(address, MAC_TAG_BYTES)
    memory.tamper_write(address, bytes(b ^ 0xFF for b in tag))


def splice_chunks(
    memory: DeviceMemory,
    config: ShieldConfig,
    region_name: str,
    source_chunk: int,
    target_chunk: int,
) -> None:
    """Copy a valid (ciphertext, tag) pair from one chunk address onto another."""
    region = config.region(region_name)
    snapshot = read_chunk_raw(memory, config, region_name, source_chunk)
    memory.tamper_write(_chunk_address(region, target_chunk), snapshot.ciphertext)
    memory.tamper_write(config.tag_address(region, target_chunk), snapshot.tag)


def replay_chunk(memory: DeviceMemory, config: ShieldConfig, snapshot: ChunkSnapshot) -> None:
    """Restore a previously captured (ciphertext, tag) pair over the current one."""
    region = config.region(snapshot.region_name)
    memory.tamper_write(_chunk_address(region, snapshot.chunk_index), snapshot.ciphertext)
    memory.tamper_write(config.tag_address(region, snapshot.chunk_index), snapshot.tag)


def snoop_region(
    memory: DeviceMemory, config: ShieldConfig, region_name: str
) -> bytes:
    """Dump a whole region's raw DRAM contents (what a bus probe would see)."""
    region = config.region(region_name)
    return memory.tamper_read(region.base_address, region.size_bytes)
