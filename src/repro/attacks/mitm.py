"""Attacks on the remote-attestation protocol via the untrusted host channel.

The host CPU relays every attestation message, so a compromised host can try
to man-in-the-middle the exchange: replay an old report against a new nonce,
substitute its own key material, redirect the Load Key to a different Shield,
or simply corrupt messages.  Each helper here builds a tamper hook for
:class:`~repro.attestation.channel.HostProxiedChannel`; the attack tests
assert that the IP Vendor or the Security Kernel rejects the manipulated run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.attestation.messages import LoadKeyDelivery, SignedAttestationReport


@dataclass
class ReplayRecorder:
    """Records reports from one attestation run to replay in a later one."""

    recorded_report: Optional[bytes] = None
    replays: int = field(default=0)

    def record_hook(self, direction: str, message: bytes) -> bytes:
        """Install on the victim's first run: remembers the signed report."""
        if direction == "to_remote" and _looks_like(message, "signed-report"):
            self.recorded_report = message
        return message

    def replay_hook(self, direction: str, message: bytes) -> bytes:
        """Install on a later run: substitutes the stale report for the fresh one."""
        if (
            direction == "to_remote"
            and _looks_like(message, "signed-report")
            and self.recorded_report is not None
        ):
            self.replays += 1
            return self.recorded_report
        return message


def _looks_like(message: bytes, kind: str) -> bool:
    try:
        return json.loads(message.decode("utf-8")).get("kind") == kind
    except (UnicodeDecodeError, json.JSONDecodeError):
        return False


def corrupt_report_hook(direction: str, message: bytes) -> bytes:
    """Flip a byte inside the signed report (simulates in-flight modification)."""
    if direction == "to_remote" and _looks_like(message, "signed-report"):
        report = SignedAttestationReport.deserialize(message)
        forged = SignedAttestationReport(
            report=report.report,
            report_signature=bytes([report.report_signature[0] ^ 0xFF])
            + report.report_signature[1:],
            session_key_signature=report.session_key_signature,
        )
        return forged.serialize()
    return message


def swap_bitstream_hash_hook(forged_hash: bytes):
    """Claim a different bitstream was loaded (defeated by the report signature)."""

    def hook(direction: str, message: bytes) -> bytes:
        if direction == "to_remote" and _looks_like(message, "signed-report"):
            body = json.loads(message.decode("utf-8"))
            report_body = json.loads(bytes.fromhex(body["report"]).decode("utf-8"))
            report_body["encrypted_bitstream_hash"] = forged_hash.hex()
            body["report"] = json.dumps(report_body, sort_keys=True).encode("utf-8").hex()
            return json.dumps(body, sort_keys=True).encode("utf-8")
        return message

    return hook


def redirect_load_key_hook(new_shield_id: str):
    """Redirect the Load Key to a different Shield slot (detected by the protocol)."""

    def hook(direction: str, message: bytes) -> bytes:
        if direction == "to_device" and _looks_like(message, "load-key"):
            delivery = LoadKeyDelivery.deserialize(message)
            return LoadKeyDelivery(
                wrapped_key=delivery.wrapped_key, shield_id=new_shield_id
            ).serialize()
        return message

    return hook


def drop_key_delivery_hook(direction: str, message: bytes) -> Optional[bytes]:
    """Drop the Bitstream Key delivery entirely (denial, surfaced as a protocol error)."""
    if direction == "to_device" and _looks_like(message, "key-delivery"):
        return None
    return message
