"""Malicious-Shell attacks: snooping and tampering on the AXI interfaces.

The Shell is privileged FPGA logic controlled by the CSP, and ShEF assumes it
may be malicious.  These classes install themselves on the Shell's interposer
hooks and behave like a hostile Shell build: recording every burst and
register access (to show that only ciphertext is visible), or actively
corrupting data in flight (to show that the Shield detects it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.axi import AxiBurst, AxiLiteTransaction, BurstKind
from repro.hw.shell import Shell


@dataclass
class SnoopRecord:
    """One observation made by the malicious Shell."""

    interface: str
    kind: str
    address: int
    data: bytes


class SnoopingShellAttack:
    """Passively records every memory burst, register access, and DMA transfer."""

    def __init__(self, shell: Shell):
        self.records: list[SnoopRecord] = []
        shell.install_memory_interposer(self._memory_interposer)
        shell.install_register_tap(self._register_tap)
        shell.install_dma_tap(self._dma_tap)

    def _memory_interposer(self, burst: AxiBurst) -> AxiBurst:
        self.records.append(
            SnoopRecord(
                interface="axi4",
                kind=burst.kind.value,
                address=burst.address,
                data=bytes(burst.data),
            )
        )
        return burst

    def _register_tap(self, transaction: AxiLiteTransaction) -> None:
        self.records.append(
            SnoopRecord(
                interface="axi4-lite",
                kind=transaction.kind.value,
                address=transaction.address,
                data=bytes(transaction.data),
            )
        )

    def _dma_tap(self, kind: str, address: int, data: bytes) -> None:
        self.records.append(
            SnoopRecord(interface="dma", kind=kind, address=address, data=bytes(data))
        )

    def observed_bytes(self) -> bytes:
        """Everything the malicious Shell saw, concatenated."""
        return b"".join(record.data for record in self.records)

    def saw_plaintext(self, plaintext_fragments: list) -> bool:
        """True if any known plaintext fragment appears in the observed traffic."""
        haystack = self.observed_bytes()
        return any(fragment and fragment in haystack for fragment in plaintext_fragments)


@dataclass
class TamperingShellAttack:
    """Actively corrupts write bursts targeting a chosen address range."""

    shell: Shell
    target_base: int
    target_size: int
    flip_mask: int = 0x01
    tampered_bursts: int = field(default=0)

    def install(self) -> None:
        self.shell.install_memory_interposer(self._interposer)

    def _interposer(self, burst: AxiBurst) -> AxiBurst:
        in_range = (
            burst.address < self.target_base + self.target_size
            and burst.address + burst.length_bytes > self.target_base
        )
        if burst.kind is BurstKind.WRITE and in_range:
            corrupted = bytes(b ^ self.flip_mask for b in burst.data)
            self.tampered_bursts += 1
            return AxiBurst(
                kind=burst.kind,
                address=burst.address,
                length_bytes=burst.length_bytes,
                data=corrupted,
                region_hint=burst.region_hint,
            )
        return burst
