"""Untrusted host-side software: the FPGA driver and the ShEF host runtime."""

from repro.host.driver import DriverState, FpgaDriver
from repro.host.runtime import HostTransferLog, ShefHostRuntime

__all__ = ["DriverState", "FpgaDriver", "HostTransferLog", "ShefHostRuntime"]
