"""The ShEF host runtime: the untrusted data mover between Data Owner and Shield.

In the paper the host program links against the Xilinx runtime (XRT), forwards
the Load Key and encrypted data to the FPGA, and proxies all communication
between the Data Owner and the Shield -- but it is explicitly outside the TCB
and never observes plaintext.  This class mirrors that role: everything it
moves is ciphertext or sealed blobs produced elsewhere, and the methods are
thin wrappers over the Shell's DMA and register interfaces so tests can verify
that nothing secret ever passes through host-visible state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attestation.data_owner import StagedRegionData
from repro.attestation.messages import LoadKeyDelivery
from repro.core.config import MAC_TAG_BYTES, ShieldConfig
from repro.core.register_interface import (
    DOORBELL_ADDRESS,
    INBOX_BASE,
    OUTBOX_BASE,
    STATUS_ADDRESS,
    STATUS_OK,
)
from repro.core.shield import Shield
from repro.errors import ShieldError
from repro.hw.shell import Shell


@dataclass
class HostTransferLog:
    """Everything the (untrusted) host observed moving through it.

    ``label`` identifies which runtime produced the log when several host
    programs share one audit trail -- the multi-tenant serving layer tags
    each log with the tenant session it served, so cross-tenant forensics
    ("which session moved this blob?") stay possible even though the blobs
    themselves are all ciphertext.
    """

    dma_writes: int = 0
    dma_reads: int = 0
    bytes_uploaded: int = 0
    bytes_downloaded: int = 0
    register_commands: int = 0
    observed_blobs: list = field(default_factory=list)
    label: str = ""


class ShefHostRuntime:
    """The host program: forwards sealed data between Data Owner, Shell, and Shield."""

    def __init__(self, shell: Shell, shield_config: ShieldConfig, label: str = ""):
        self.shell = shell
        self.shield_config = shield_config
        self.log = HostTransferLog(label=label)

    # -- key delivery ------------------------------------------------------------------

    def deliver_load_key(self, shield: Shield, load_key: LoadKeyDelivery) -> None:
        """Forward the wrapped Load Key to the Shield (step 11 of Figure 2)."""
        self.log.observed_blobs.append(("load_key", load_key.wrapped_key))
        shield.provision_load_key(load_key.wrapped_key)

    # -- bulk data movement -----------------------------------------------------------------

    def upload_region(self, staged: StagedRegionData) -> None:
        """DMA sealed input data (ciphertext + per-chunk tags) into device memory."""
        region = staged.region
        ciphertext = staged.flat_ciphertext()
        self.shell.host_dma_write(region.base_address, ciphertext)
        self.log.dma_writes += 1
        self.log.bytes_uploaded += len(ciphertext)
        for index, tag in enumerate(staged.tags()):
            chunk_index = staged.sealed_chunks[index].chunk_index
            self.shell.host_dma_write(
                self.shield_config.tag_address(region, chunk_index), tag
            )
            self.log.dma_writes += 1
            self.log.bytes_uploaded += len(tag)
        self.log.observed_blobs.append(("region_upload", region.name, len(ciphertext)))

    def download_region(self, region_name: str, num_chunks: int, offset_chunks: int = 0) -> tuple:
        """DMA sealed output data back out; returns (ciphertext, tags).

        The host cannot decrypt any of it -- the Data Owner unseals the result
        with the Data Encryption Key.
        """
        region = self.shield_config.region(region_name)
        start = region.base_address + offset_chunks * region.chunk_size
        length = num_chunks * region.chunk_size
        ciphertext = self.shell.host_dma_read(start, length)
        tags = [
            self.shell.host_dma_read(
                self.shield_config.tag_address(region, offset_chunks + index), MAC_TAG_BYTES
            )
            for index in range(num_chunks)
        ]
        self.log.dma_reads += 1 + num_chunks
        self.log.bytes_downloaded += length + num_chunks * MAC_TAG_BYTES
        return ciphertext, tags

    # -- register channel ------------------------------------------------------------------------

    def send_register_command(self, sealed_blob: bytes) -> int:
        """Write a sealed register command into the inbox and ring the doorbell.

        Returns the Shield's status word (1 = accepted, 2 = rejected).
        """
        if len(sealed_blob) > 0x1000:
            raise ShieldError("sealed register command does not fit in the mailbox")
        padded = sealed_blob + b"\x00" * ((4 - len(sealed_blob) % 4) % 4)
        for offset in range(0, len(padded), 4):
            self.shell.host_register_write(INBOX_BASE + offset, padded[offset : offset + 4])
        self.shell.host_register_write(DOORBELL_ADDRESS, len(sealed_blob).to_bytes(4, "big"))
        self.log.register_commands += 1
        self.log.observed_blobs.append(("register_command", sealed_blob))
        return self.read_status()

    def read_status(self) -> int:
        """Read the Shield's status register."""
        return int.from_bytes(self.shell.host_register_read(STATUS_ADDRESS), "big")

    def fetch_register_response(self, length: int) -> bytes:
        """Read a sealed read-response of ``length`` bytes out of the outbox."""
        words = []
        for offset in range(0, length, 4):
            words.append(self.shell.host_register_read(OUTBOX_BASE + offset))
        blob = b"".join(words)[:length]
        self.log.observed_blobs.append(("register_response", blob))
        return blob

    def command_accepted(self, status: int) -> bool:
        return status == STATUS_OK
