"""The CSP's FPGA driver: untrusted management software on the host.

The driver is the cloud-provider tooling a Data Owner uses to reset the FPGA,
kick off secure boot, and hand encrypted bitstreams to the Security Kernel --
the software equivalents of ``fpga-clear-local-image`` / ``fpga-load-local-image``
in the AWS F1 workflow.  It never sees plaintext bitstreams or keys: everything
it touches is encrypted, and the Security Kernel re-verifies everything it is
given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.boot.process import SecureBootResult, install_security_kernel, perform_secure_boot
from repro.boot.security_kernel import SecurityKernel
from repro.errors import BootError
from repro.hw.bitstream import Bitstream, EncryptedBitstream
from repro.hw.board import FpgaBoard


@dataclass
class DriverState:
    """What the driver believes about the board (it is not trusted to be right)."""

    booted: bool = False
    shell_loaded: bool = False
    accelerator_loaded: bool = False
    loaded_accelerator_name: Optional[str] = None


class FpgaDriver:
    """Untrusted host-side management of one FPGA board."""

    def __init__(self, board: FpgaBoard, shell_design_name: str = "csp-shell"):
        self.board = board
        self.shell_design_name = shell_design_name
        self.state = DriverState()
        self._kernel: Optional[SecurityKernel] = None
        self._boot_result: Optional[SecureBootResult] = None

    # -- boot ------------------------------------------------------------------------

    def reset_and_boot(self) -> SecureBootResult:
        """Reset the user region and run the secure-boot chain."""
        self.board.reset_user_region()
        if "security_kernel" not in self.board.boot_medium:
            install_security_kernel(self.board)
        result = perform_secure_boot(self.board)
        self._kernel = result.kernel
        self._boot_result = result
        self.state.booted = True
        return result

    @property
    def security_kernel(self) -> SecurityKernel:
        if self._kernel is None:
            raise BootError("the board has not been booted; call reset_and_boot first")
        return self._kernel

    # -- Shell and accelerator loading ---------------------------------------------------

    def load_shell(self) -> None:
        """Ask the Security Kernel to launch the CSP's Shell into the static region."""
        shell_bitstream = Bitstream(
            accelerator_name=self.shell_design_name,
            vendor="cloud-service-provider",
            accelerator_spec={"kind": "shell"},
        )
        self.security_kernel.launch_shell(shell_bitstream)
        self.state.shell_loaded = True

    def stage_accelerator(self, encrypted_bitstream: EncryptedBitstream) -> None:
        """Hand the (still encrypted) accelerator bitstream to the Security Kernel."""
        self.security_kernel.stage_encrypted_bitstream(encrypted_bitstream)

    def load_accelerator(self) -> Bitstream:
        """Ask the kernel to decrypt and load the staged accelerator (post-attestation)."""
        bitstream = self.security_kernel.load_accelerator()
        self.state.accelerator_loaded = True
        self.state.loaded_accelerator_name = bitstream.accelerator_name
        return bitstream

    def describe_image(self) -> dict:
        """The driver's (untrusted) view of what is loaded, for operator tooling."""
        return {
            "booted": self.state.booted,
            "shell_loaded": self.state.shell_loaded,
            "accelerator_loaded": self.state.accelerator_loaded,
            "accelerator": self.state.loaded_accelerator_name,
            "boot_seconds": self._boot_result.total_seconds if self._boot_result else None,
        }
