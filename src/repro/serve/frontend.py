"""The asyncio serving front-end over :class:`ShieldCloudService`.

:class:`AsyncShieldFrontend` turns the synchronous, caller-driven replay
harness (``submit_job`` + hand-cranked ``run_next_job``) into a service loop
that accepts concurrent tenant request streams and returns *awaitable job
futures*:

* **Concurrency model.**  The event loop owns every piece of shared
  scheduling state -- the :class:`~repro.cloud.scheduler.FleetScheduler`
  queue, the live-job maps, ``_submit_ts`` -- and only the job *body*
  (Shield load, input seal, execute, download, unseal: the numpy crypto) is
  moved onto a thread-pool executor, one worker per board.  A job therefore
  overlaps its crypto with other boards' work while admission, placement,
  and completion bookkeeping stay single-threaded (the service's
  ``begin_next_job`` / ``execute_placed`` / ``finish_placed`` split exists
  for exactly this).
* **One in-flight job per board, one per session.**  Boards serialize
  naturally (a board is acquired until released).  Sessions are additionally
  serialized by an eligibility predicate on the scheduler: two concurrent
  jobs of one session would race on the session's per-job key rotation
  (Data Encryption Key + wrapped Load Key), so a session's next job waits
  until its previous one finishes -- which also pins a session to its warm
  board, preserving the affinity behaviour of the synchronous drain.
* **Backpressure.**  Per-tenant token buckets (:mod:`repro.serve.ratelimit`)
  and a queue-depth load-shed bound layer on top of PR 5's admission
  control.  Every refusal -- rate limit, shed, fleet queue cap, tenant
  quota, post-shutdown submit -- resolves the caller's future with a job in
  ``JobState.REJECTED`` carrying the reason; backpressure is never an
  exception.
* **Observability.**  Each accepted job gets an ``enqueue`` span
  (front-end admission -> scheduler queue) and an ``executor_handoff`` span
  (placed on the loop -> body starts on a worker thread) in addition to the
  PR 6 lifecycle spans; refusals land as ``ratelimited`` / ``shed`` marks
  and ``cloud.jobs_ratelimited`` / ``cloud.jobs_shed`` lifetime counters.
* **Drain and shutdown.**  :meth:`drain` awaits quiescence;
  :meth:`shutdown` stops intake, either drains or cancels the queue
  (cancelled futures resolve with ``JobState.CANCELLED`` jobs), waits for
  in-flight work, and evicts every warm Shield so no tenant key material
  stays resident on hardware.

Usage::

    service = ShieldCloudService(num_boards=4, fast_crypto=True)
    async with AsyncShieldFrontend(service, rate_limit=50.0) as frontend:
        session = service.admit_tenant("alice", accelerator)
        job = await frontend.submit(session.session_id, inputs=inputs)
        if job.state is JobState.REJECTED:
            ...  # backpressure: slow down and retry
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

from repro.analysis.annotations import executor_side
from repro.cloud.scheduler import JobState
from repro.cloud.service import PlacedJob, ShieldCloudService
from repro.errors import CloudError
from repro.serve.ratelimit import TokenBucket


class AsyncShieldFrontend:
    """Serve concurrent tenant request streams over a ShieldCloudService."""

    def __init__(
        self,
        service: ShieldCloudService,
        rate_limit: float | None = None,
        burst: float | None = None,
        max_pending: int | None = None,
        clock=None,
        executor: ThreadPoolExecutor | None = None,
    ):
        """``rate_limit`` is the default per-tenant submission rate in
        jobs/second (``None`` disables rate limiting); ``burst`` the bucket
        capacity (see :class:`TokenBucket`).  ``max_pending`` sheds any
        submission that would push the scheduler's pending queue beyond this
        depth (``None`` leaves shedding to the service's own ``queue_cap``).
        ``clock`` feeds the token buckets (tests pass a fake).  ``executor``
        overrides the default one-thread-per-board pool (the front-end owns
        and shuts down the default; a caller-provided executor is left
        running)."""
        if max_pending is not None and max_pending < 1:
            raise CloudError("max_pending must be positive (or None)")
        self.service = service
        self.rate_limit = rate_limit
        self.burst = burst
        self.max_pending = max_pending
        self._clock = clock
        self._executor = executor or ThreadPoolExecutor(
            max_workers=len(service.slots), thread_name_prefix="shield-board"
        )
        self._own_executor = executor is None
        self._buckets: dict = {}
        #: job id -> the caller-facing future for every accepted live job.
        self._futures: dict = {}
        #: session id -> job future of that session's in-flight job.
        self._inflight: dict = {}
        #: sessions being closed: their queued jobs must not start.
        self._closing: set = set()
        self._closed = False

    # -- context management -------------------------------------------------------

    async def __aenter__(self) -> "AsyncShieldFrontend":
        return self

    async def __aexit__(self, *exc) -> bool:
        await self.shutdown(drain=exc == (None, None, None))
        return False

    # -- rate limiting ------------------------------------------------------------

    def set_rate_limit(self, tenant: str, rate: float, burst: float | None = None):
        """Install a tenant-specific token bucket (overrides the default)."""
        self._buckets[tenant] = TokenBucket(rate, burst, clock=self._clock)
        return self._buckets[tenant]

    def _bucket(self, tenant: str) -> TokenBucket | None:
        bucket = self._buckets.get(tenant)
        if bucket is None and self.rate_limit is not None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.rate_limit, self.burst, clock=self._clock
            )
        return bucket

    # -- submission ---------------------------------------------------------------

    async def submit(self, session_id: str, **kwargs):
        """Submit and await the finished job (see :meth:`submit_nowait`)."""
        return await self.submit_nowait(session_id, **kwargs)

    def submit_nowait(self, session_id: str, **kwargs) -> "asyncio.Future":
        """Admit one job and return a future resolving to its terminal
        :class:`~repro.cloud.scheduler.AcceleratorJob`.

        The future *always* resolves with a job -- REJECTED on backpressure
        (rate limit, load shed, admission control, shutdown), CANCELLED if
        the session closes or the front-end shuts down first, COMPLETED /
        FAILED after execution.  Unknown or closed sessions raise exactly
        like the synchronous ``submit_job`` (caller bugs, not backpressure).

        Must be called on the event loop thread.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        service = self.service
        enqueue_start = service.now()
        session = service.sessions.get(session_id)
        tenant = session.tenant if session is not None else None

        def refuse(reason: str, kind: str) -> "asyncio.Future":
            job = service.reject_job(session_id, reason, kind=kind)
            service.tracer.record_span(
                "enqueue",
                enqueue_start,
                service.now() - enqueue_start,
                tenant=tenant,
                session=session_id,
                job=job.job_id,
                outcome=kind,
            )
            future.set_result(job)
            return future

        if self._closed:
            return refuse("front-end is shut down", kind="shed")
        bucket = self._bucket(tenant) if tenant is not None else None
        if bucket is not None and not bucket.try_take():
            return refuse(
                f"tenant {tenant!r} exceeded its submission rate "
                f"({bucket.rate:g}/s, burst {bucket.burst:g})",
                kind="ratelimited",
            )
        if (
            self.max_pending is not None
            and service.scheduler.pending_jobs >= self.max_pending
        ):
            return refuse(
                f"front-end queue is full ({self.max_pending} job(s) pending)",
                kind="shed",
            )
        job = service.submit_job(session_id, **kwargs)
        service.tracer.record_span(
            "enqueue",
            enqueue_start,
            service.now() - enqueue_start,
            tenant=job.tenant,
            session=session_id,
            job=job.job_id,
            outcome="rejected" if job.state is JobState.REJECTED else "queued",
        )
        if job.state is JobState.REJECTED:
            # PR 5 admission control (queue cap / tenant quota): an outcome,
            # never an exception on the await.
            future.set_result(job)
            return future
        self._futures[job.job_id] = future
        self._pump(loop)
        return future

    # -- the service loop ---------------------------------------------------------

    def _eligible(self, job) -> bool:
        return (
            job.session_id not in self._inflight
            and job.session_id not in self._closing
        )

    def _pump(self, loop) -> None:
        """Place every currently runnable job (one per free board)."""
        while True:
            placed = self.service.begin_next_job(eligible=self._eligible)
            if placed is None:
                return
            job_future = self._futures.get(placed.job.job_id)
            if job_future is not None:
                self._inflight[placed.job.session_id] = job_future
            handoff_start = self.service.now()
            worker = loop.run_in_executor(
                self._executor, self._run_body, placed, handoff_start
            )
            worker.add_done_callback(
                lambda done, placed=placed: self._on_done(loop, placed, done)
            )

    @executor_side
    def _run_body(self, placed: PlacedJob, handoff_start: float) -> None:
        """Executor-thread entry: stamp the handoff span, run the job body."""
        service = self.service
        service.tracer.record_span(
            "executor_handoff",
            handoff_start,
            service.now() - handoff_start,
            tenant=placed.job.tenant,
            session=placed.job.session_id,
            job=placed.job.job_id,
            board=placed.slot.name,
        )
        service.execute_placed(placed)

    def _on_done(self, loop, placed: PlacedJob, worker) -> None:
        """Loop-side completion: finalize bookkeeping, resolve, re-pump."""
        error = worker.exception()
        self.service.finish_placed(placed, error)
        self._inflight.pop(placed.job.session_id, None)
        job_future = self._futures.pop(placed.job.job_id, None)
        if job_future is not None and not job_future.done():
            job_future.set_result(placed.job)
        self._pump(loop)

    # -- session and service teardown ---------------------------------------------

    async def close_session(self, session_id: str) -> list:
        """Close a tenant session from the serving path.

        Waits for the session's in-flight job (its board cannot be evicted
        mid-execution), blocks its queued jobs from starting meanwhile, then
        runs the service's teardown -- queued jobs cancel, warm Shields are
        evicted -- and resolves the cancelled jobs' futures.
        """
        self._closing.add(session_id)
        try:
            while session_id in self._inflight:
                await asyncio.shield(self._inflight[session_id])
            cancelled = self.service.close_session(session_id)
            self._resolve_cancelled(cancelled)
            return cancelled
        finally:
            self._closing.discard(session_id)

    def _resolve_cancelled(self, cancelled: list) -> None:
        for job in cancelled:
            job_future = self._futures.pop(job.job_id, None)
            if job_future is not None and not job_future.done():
                job_future.set_result(job)

    async def drain(self) -> None:
        """Wait until no submitted job is queued or in flight."""
        while self._futures:
            await asyncio.wait(list(self._futures.values()))

    async def shutdown(self, drain: bool = True) -> None:
        """Stop intake and wind the fleet down to cold, idle boards.

        ``drain=True`` finishes all accepted work first; ``drain=False``
        cancels everything still queued (their futures resolve with
        ``JobState.CANCELLED`` jobs) and only waits for in-flight jobs.
        Either way every warm Shield is evicted afterwards, so no tenant key
        material stays resident, and subsequent submits resolve REJECTED.
        Idempotent.
        """
        self._closed = True
        if not drain:
            cancelled = self.service.cancel_queued_jobs(
                reason="front-end shut down before the job was scheduled"
            )
            self._resolve_cancelled(cancelled)
        await self.drain()
        self.service.evict_idle_shields()
        if self._own_executor:
            self._executor.shutdown(wait=True)

    # -- introspection ------------------------------------------------------------

    @property
    def inflight_jobs(self) -> int:
        return len(self._inflight)

    @property
    def pending_futures(self) -> int:
        """Accepted jobs not yet resolved (queued + in flight)."""
        return len(self._futures)
