"""``repro.serve``: the asyncio request-path front-end for the Shield fleet.

Layers an always-on serving loop over the synchronous
:class:`~repro.cloud.service.ShieldCloudService`:

* :class:`AsyncShieldFrontend` -- accepts concurrent tenant request streams,
  returns awaitable job futures, overlaps job bodies across boards via a
  thread-pool executor (one worker per board), and serializes each session's
  jobs to protect its per-job key rotation;
* :class:`TokenBucket` -- per-tenant token-bucket rate limiting; together
  with queue-depth load shedding it resolves refused submissions with
  ``JobState.REJECTED`` jobs (backpressure is an outcome, never an
  unhandled exception).

See ``docs/serving.md`` and the ``serve-demo`` CLI subcommand.
"""

from __future__ import annotations

from repro.serve.frontend import AsyncShieldFrontend
from repro.serve.ratelimit import TokenBucket

__all__ = ["AsyncShieldFrontend", "TokenBucket"]
