"""Per-tenant token-bucket rate limiting for the serving front-end.

A :class:`TokenBucket` meters one tenant's submission rate: the bucket fills
continuously at ``rate`` tokens/second up to ``burst`` capacity, and every
accepted submission spends one token.  A submission arriving on an empty
bucket is *shed* -- the front-end resolves its future with a
``JobState.REJECTED`` job rather than queueing unbounded work (the same
"backpressure is an outcome, not an exception" contract as PR 5's admission
control).

The clock is injectable so tests can drive refill deterministically; the
default is :func:`time.monotonic`.
"""

from __future__ import annotations

import time

from repro.errors import CloudError


class TokenBucket:
    """A continuously refilling token bucket (one per tenant)."""

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock")

    def __init__(self, rate: float, burst: float | None = None, clock=None):
        """``rate`` is tokens (submissions) per second; ``burst`` caps how
        many tokens can accumulate while a tenant is idle (defaults to
        ``max(rate, 1)`` -- at least one full-size request is always
        admissible after a quiet spell)."""
        if rate <= 0:
            raise CloudError("token-bucket rate must be positive")
        if burst is not None and burst <= 0:
            raise CloudError("token-bucket burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(self.rate, 1.0)
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = self.burst
        self._last = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last = now

    @property
    def tokens(self) -> float:
        """Current token level (after refill); for tests and dashboards."""
        self._refill()
        return self._tokens

    def try_take(self, amount: float = 1.0) -> bool:
        """Spend ``amount`` tokens if available; False means *shed me*."""
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False
