"""Command-line interface for the ShEF reproduction.

Three subcommands cover the common workflows without writing any Python:

* ``experiments`` -- run one (or all) of the paper's experiments and print the
  same rows the paper reports, optionally exporting CSV/JSON;
* ``deploy-demo`` -- run the end-to-end Figure 2 workflow on a chosen
  accelerator and report boot/attestation/Shield status;
* ``list`` -- enumerate the available accelerators, experiments, and board
  profiles.

Usage::

    python -m repro.cli experiments table-2
    python -m repro.cli experiments all --export-dir results/
    python -m repro.cli deploy-demo dnnweaver --board aws-f1
    python -m repro.cli list
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.accelerators import ALL_ACCELERATORS
from repro.hw.board import BoardModel
from repro.sim import experiments as experiments_module
from repro.sim.export import write_experiment
from repro.sim.reporting import render_experiment

EXPERIMENTS = {
    "section-6.1": experiments_module.boot_latency_experiment,
    "table-1": experiments_module.table1_experiment,
    "figure-5": experiments_module.figure5_experiment,
    "section-6.2.2-matmul": experiments_module.matmul_companion_experiment,
    "table-2": experiments_module.table2_experiment,
    "figure-6": experiments_module.figure6_experiment,
    "table-3": experiments_module.table3_experiment,
    "ablation-replay": experiments_module.ablation_replay_protection,
    "ablation-chunk-size": experiments_module.ablation_chunk_size,
    "ablation-buffer": experiments_module.ablation_buffer_size,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ShEF (ASPLOS 2022) reproduction command-line interface"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "experiments", help="run one of the paper's experiments (or 'all')"
    )
    run_parser.add_argument(
        "experiment", choices=sorted(EXPERIMENTS) + ["all"], help="experiment identifier"
    )
    run_parser.add_argument(
        "--export-dir", default=None, help="write each result as CSV into this directory"
    )
    run_parser.add_argument(
        "--json", action="store_true", help="export JSON instead of CSV"
    )

    demo_parser = subparsers.add_parser(
        "deploy-demo", help="run the end-to-end deployment workflow for an accelerator"
    )
    demo_parser.add_argument("accelerator", choices=sorted(ALL_ACCELERATORS))
    demo_parser.add_argument(
        "--board", choices=[model.value for model in BoardModel], default="aws-f1"
    )

    subparsers.add_parser("list", help="list accelerators, experiments, and boards")
    return parser


def run_experiments(args: argparse.Namespace, out=sys.stdout) -> int:
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = EXPERIMENTS[name]()
        print(render_experiment(result), file=out)
        print(file=out)
        if args.export_dir:
            os.makedirs(args.export_dir, exist_ok=True)
            extension = "json" if args.json else "csv"
            path = os.path.join(args.export_dir, f"{name}.{extension}")
            write_experiment(result, path)
            print(f"wrote {path}", file=out)
    return 0


def run_deploy_demo(args: argparse.Namespace, out=sys.stdout) -> int:
    from repro.workflow import deploy_accelerator

    accelerator = ALL_ACCELERATORS[args.accelerator]()
    config = accelerator.build_shield_config()
    deployment = deploy_accelerator(args.accelerator, config, board_model=args.board)
    print(f"accelerator        : {args.accelerator}", file=out)
    print(f"board              : {args.board}", file=out)
    print(f"secure boot        : {deployment.boot_result.total_seconds:.1f} s (modelled)", file=out)
    print(f"attestation        : {deployment.attestation.transcript_length} messages", file=out)
    print(f"shield operational : {deployment.shield.operational}", file=out)
    print(f"engine sets        : {len(config.engine_sets)}", file=out)
    print(f"protected regions  : {len(config.regions)}", file=out)
    return 0


def run_list(out=sys.stdout) -> int:
    print("accelerators:", file=out)
    for name in sorted(ALL_ACCELERATORS):
        print(f"  {name}", file=out)
    print("experiments:", file=out)
    for name in sorted(EXPERIMENTS):
        print(f"  {name}", file=out)
    print("boards:", file=out)
    for model in BoardModel:
        print(f"  {model.value}", file=out)
    return 0


def main(argv=None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "experiments":
        return run_experiments(args, out=out)
    if args.command == "deploy-demo":
        return run_deploy_demo(args, out=out)
    return run_list(out=out)


if __name__ == "__main__":
    sys.exit(main())
