"""Command-line interface for the ShEF reproduction.

Three subcommands cover the common workflows without writing any Python:

* ``experiments`` -- run one (or all) of the paper's experiments and print the
  same rows the paper reports, optionally exporting CSV/JSON;
* ``deploy-demo`` -- run the end-to-end Figure 2 workflow on a chosen
  accelerator and report boot/attestation/Shield status;
* ``cloud-demo`` -- serve several concurrent tenants from a shared board
  fleet through :class:`~repro.cloud.service.ShieldCloudService`, check every
  tenant's outputs against its single-tenant baseline, and audit the host
  ledger for plaintext leaks;
* ``serve-demo`` -- the same tenants through the asyncio request path
  (:class:`~repro.serve.AsyncShieldFrontend`): concurrent submission streams,
  per-tenant token-bucket rate limits, queue-depth load shedding, and a
  graceful drain, with the backpressure outcomes in the summary;
* ``cloud-trace`` -- replay a multi-tenant trace through the timed
  :class:`~repro.sim.cloud.CloudSimulator` under a chosen scheduling policy,
  with or without warm-board Shield affinity;
* ``shard-replay`` -- generate a large synthetic trace (Poisson, diurnal, or
  heavy-tailed arrivals; Zipf tenant popularity) and replay it across N shard
  fleets behind the consistent-hash :class:`~repro.cloud.shard.ShardRouter`,
  one simulator worker per shard, optionally with the queue-depth autoscaler;
* ``trace-report`` -- render per-stage latency percentiles and per-tenant
  breakdowns from a JSONL trace written by ``--trace``;
* ``list`` -- enumerate the available accelerators, experiments, and board
  profiles.

``cloud-demo`` and ``cloud-trace`` share the observability flags: ``--trace``
writes the lifecycle event stream as JSONL, ``--chrome-trace`` writes a
``chrome://tracing``-loadable timeline, and ``--metrics`` dumps the metrics
registry in Prometheus text format (``-`` for stdout).

Usage::

    python -m repro.cli experiments table-2
    python -m repro.cli experiments all --export-dir results/
    python -m repro.cli deploy-demo dnnweaver --board aws-f1
    python -m repro.cli cloud-demo --boards 2 --fast-crypto --policy fair
    python -m repro.cli cloud-demo --trace run.jsonl --metrics -
    python -m repro.cli serve-demo --boards 2 --fast-crypto --rate-limit 4
    python -m repro.cli cloud-trace --policy sjf --repeated-tenant
    python -m repro.cli shard-replay --shards 8 --jobs 100000 --arrival diurnal
    python -m repro.cli trace-report run.jsonl
    python -m repro.cli list
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

import repro.obs as obs_api

from repro.accelerators import ALL_ACCELERATORS
from repro.cloud.policies import POLICY_NAMES
from repro.hw.board import BoardModel
from repro.sim import experiments as experiments_module
from repro.sim.cloud import cloud_trace_experiment
from repro.sim.export import write_experiment
from repro.sim.reporting import render_experiment

EXPERIMENTS = {
    "cloud-trace": cloud_trace_experiment,
    "section-6.1": experiments_module.boot_latency_experiment,
    "table-1": experiments_module.table1_experiment,
    "figure-5": experiments_module.figure5_experiment,
    "section-6.2.2-matmul": experiments_module.matmul_companion_experiment,
    "table-2": experiments_module.table2_experiment,
    "figure-6": experiments_module.figure6_experiment,
    "table-3": experiments_module.table3_experiment,
    "ablation-replay": experiments_module.ablation_replay_protection,
    "ablation-chunk-size": experiments_module.ablation_chunk_size,
    "ablation-buffer": experiments_module.ablation_buffer_size,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ShEF (ASPLOS 2022) reproduction command-line interface"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "experiments", help="run one of the paper's experiments (or 'all')"
    )
    run_parser.add_argument(
        "experiment", choices=sorted(EXPERIMENTS) + ["all"], help="experiment identifier"
    )
    run_parser.add_argument(
        "--export-dir", default=None, help="write each result as CSV into this directory"
    )
    run_parser.add_argument(
        "--json", action="store_true", help="export JSON instead of CSV"
    )

    demo_parser = subparsers.add_parser(
        "deploy-demo", help="run the end-to-end deployment workflow for an accelerator"
    )
    demo_parser.add_argument("accelerator", choices=sorted(ALL_ACCELERATORS))
    demo_parser.add_argument(
        "--board", choices=[model.value for model in BoardModel], default="aws-f1"
    )

    cloud_parser = subparsers.add_parser(
        "cloud-demo", help="serve concurrent tenants from a shared board fleet"
    )
    cloud_parser.add_argument(
        "--boards", type=int, default=2, help="number of boards in the fleet"
    )
    cloud_parser.add_argument(
        "--jobs-per-tenant", type=int, default=1, help="jobs each tenant submits"
    )
    cloud_parser.add_argument(
        "--fast-crypto",
        action="store_true",
        help="use the vectorized AES-CTR fast path for every session",
    )
    _add_scheduling_flags(cloud_parser)
    _add_obs_flags(cloud_parser)
    cloud_parser.add_argument(
        "--queue-cap",
        type=int,
        default=None,
        help="fleet-wide pending-queue cap (jobs beyond it are REJECTED)",
    )

    serve_parser = subparsers.add_parser(
        "serve-demo",
        help="serve concurrent tenant streams through the asyncio front-end",
    )
    serve_parser.add_argument(
        "--boards", type=int, default=2, help="number of boards in the fleet"
    )
    serve_parser.add_argument(
        "--jobs-per-tenant", type=int, default=2, help="jobs each tenant submits"
    )
    serve_parser.add_argument(
        "--fast-crypto",
        action="store_true",
        help="use the vectorized AES-CTR fast path for every session",
    )
    _add_scheduling_flags(serve_parser)
    _add_obs_flags(serve_parser)
    serve_parser.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="JOBS_PER_S",
        help="per-tenant token-bucket rate (submissions/s); omit to disable",
    )
    serve_parser.add_argument(
        "--burst",
        type=float,
        default=None,
        help="token-bucket burst capacity (defaults to max(rate, 1))",
    )
    serve_parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help="shed submissions once N jobs are already queued",
    )
    serve_parser.add_argument(
        "--job-retention",
        type=int,
        default=1024,
        metavar="N",
        help="terminal jobs kept reachable via job_result() (must be >= 1)",
    )

    trace_parser = subparsers.add_parser(
        "cloud-trace",
        help="replay a multi-tenant trace through the timed fleet simulator",
    )
    trace_parser.add_argument(
        "--boards", type=int, default=2, help="number of boards in the fleet"
    )
    _add_scheduling_flags(trace_parser)
    trace_parser.add_argument(
        "--repeated-tenant",
        action="store_true",
        help="replay the single-tenant repeated-job trace (the affinity showcase) "
        "instead of the default mixed-tenant trace",
    )
    trace_parser.add_argument(
        "--jobs", type=int, default=8, help="jobs in the repeated-tenant trace"
    )
    _add_obs_flags(trace_parser)

    shard_parser = subparsers.add_parser(
        "shard-replay",
        help="replay a generated large-scale trace across N shard fleets "
        "(consistent-hash session routing, one simulator worker per shard)",
    )
    shard_parser.add_argument(
        "--shards", type=int, default=8, help="number of shard fleets"
    )
    shard_parser.add_argument(
        "--boards-per-shard", type=int, default=4,
        help="starting board count of each shard fleet",
    )
    shard_parser.add_argument(
        "--jobs", type=int, default=100_000, help="jobs in the generated trace"
    )
    shard_parser.add_argument(
        "--seed", type=int, default=42, help="trace generator seed"
    )
    shard_parser.add_argument(
        "--arrival",
        choices=["poisson", "diurnal", "heavy_tailed"],
        default="poisson",
        help="arrival process of the generated trace",
    )
    shard_parser.add_argument(
        "--rate", type=float, default=200.0,
        help="mean arrival rate of the generated trace (jobs/s)",
    )
    shard_parser.add_argument(
        "--workers",
        choices=["thread", "process", "serial"],
        default="thread",
        help="executor running the per-shard replay workers",
    )
    shard_parser.add_argument(
        "--autoscale-max", type=int, default=None, metavar="N",
        help="enable the queue-depth autoscaler, growing each shard up to N "
        "boards (default: fixed fleets)",
    )
    _add_scheduling_flags(shard_parser)

    report_parser = subparsers.add_parser(
        "trace-report",
        help="render per-stage percentiles and per-tenant totals from a JSONL trace",
    )
    report_parser.add_argument("trace_file", help="JSONL trace written by --trace")

    subparsers.add_parser("list", help="list accelerators, experiments, and boards")
    return parser


def _add_scheduling_flags(parser: argparse.ArgumentParser) -> None:
    """The shared scheduling knobs: one policy zoo for service and simulator."""
    parser.add_argument(
        "--policy",
        choices=list(POLICY_NAMES),
        default="fifo",
        help="scheduling policy (shared by the functional service and the simulator)",
    )
    parser.add_argument(
        "--no-affinity",
        action="store_true",
        help="disable warm-board Shield affinity (tear down + reload on every job)",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared observability exports for cloud-demo and cloud-trace."""
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write the lifecycle/security event stream as JSONL to PATH",
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="PATH",
        default=None,
        help="write a chrome://tracing-loadable timeline JSON to PATH",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="dump the metrics registry as Prometheus text to PATH ('-' for stdout)",
    )


def _obs_scope(args):
    """A scoped live observability handle when any export flag asks for one.

    Without flags the process-wide handle (normally the null backend) is used
    unchanged, so the demos stay on the no-op hot path.
    """
    if args.trace or args.chrome_trace or args.metrics:
        return obs_api.scoped()
    return contextlib.nullcontext(obs_api.current())


def _export_obs(args, handle, out) -> None:
    """Write whichever of --trace/--chrome-trace/--metrics were requested."""
    from repro.obs.exporters import prometheus_text, write_chrome_trace, write_jsonl

    if args.trace:
        write_jsonl(handle.tracer.events, args.trace)
        print(f"wrote {len(handle.tracer.events)} event(s) to {args.trace}", file=out)
    if args.chrome_trace:
        write_chrome_trace(handle.tracer.events, args.chrome_trace)
        print(f"wrote chrome trace to {args.chrome_trace}", file=out)
    if args.metrics:
        text = prometheus_text(handle.metrics)
        if args.metrics == "-":
            out.write(text)
        else:
            with open(args.metrics, "w", encoding="utf-8") as metrics_file:
                metrics_file.write(text)
            print(f"wrote metrics to {args.metrics}", file=out)


def run_experiments(args: argparse.Namespace, out=sys.stdout) -> int:
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = EXPERIMENTS[name]()
        print(render_experiment(result), file=out)
        print(file=out)
        if args.export_dir:
            os.makedirs(args.export_dir, exist_ok=True)
            extension = "json" if args.json else "csv"
            path = os.path.join(args.export_dir, f"{name}.{extension}")
            write_experiment(result, path)
            print(f"wrote {path}", file=out)
    return 0


def run_deploy_demo(args: argparse.Namespace, out=sys.stdout) -> int:
    from repro.workflow import deploy_accelerator

    accelerator = ALL_ACCELERATORS[args.accelerator]()
    config = accelerator.build_shield_config()
    deployment = deploy_accelerator(args.accelerator, config, board_model=args.board)
    print(f"accelerator        : {args.accelerator}", file=out)
    print(f"board              : {args.board}", file=out)
    print(f"secure boot        : {deployment.boot_result.total_seconds:.1f} s (modelled)", file=out)
    print(f"attestation        : {deployment.attestation.transcript_length} messages", file=out)
    print(f"shield operational : {deployment.shield.operational}", file=out)
    print(f"engine sets        : {len(config.engine_sets)}", file=out)
    print(f"protected regions  : {len(config.regions)}", file=out)
    return 0


def run_cloud_demo(args: argparse.Namespace, out=sys.stdout) -> int:
    """Three tenants, three accelerators, one shared fleet -- with receipts."""
    from repro.accelerators import (
        AffineTransformAccelerator,
        MatMulAccelerator,
        VectorAddAccelerator,
    )
    from repro.cloud import JobState, ShieldCloudService
    from repro.crypto.fastpath import fast_path_enabled
    from repro.sim.simulator import outputs_equal, run_unshielded_baseline

    if args.boards < 1:
        print("error: --boards must be at least 1", file=out)
        return 2
    if args.jobs_per_tenant < 1:
        print("error: --jobs-per-tenant must be at least 1", file=out)
        return 2

    tenants = {
        "alice": VectorAddAccelerator(8 * 1024),
        "bob": MatMulAccelerator(32),
        "carol": AffineTransformAccelerator(64),
    }
    with _obs_scope(args) as obs_handle:
        service = ShieldCloudService(
            num_boards=args.boards,
            fast_crypto=True if args.fast_crypto else None,
            policy=args.policy,
            affinity=not args.no_affinity,
            queue_cap=args.queue_cap,
        )
        sessions = {
            tenant: service.admit_tenant(tenant, accelerator)
            for tenant, accelerator in tenants.items()
        }
        jobs: dict = {tenant: [] for tenant in tenants}
        all_inputs: dict = {}
        for round_index in range(args.jobs_per_tenant):
            for tenant, accelerator in tenants.items():
                inputs = accelerator.prepare_inputs(seed=round_index)
                all_inputs[(tenant, round_index)] = inputs
                jobs[tenant].append(
                    service.submit_job(sessions[tenant].session_id, inputs=inputs)
                )
        service.run_until_idle()

        summary = service.fleet_summary()
        print(f"fleet               : {args.boards} board(s), "
              f"{len(tenants)} concurrent tenants", file=out)
        print(f"policy              : {summary['policy']} "
              f"(affinity {'on' if summary['affinity'] else 'off'})", file=out)
        mismatches = 0
        failures = 0
        for round_index in range(args.jobs_per_tenant):
            for tenant, accelerator in tenants.items():
                job = jobs[tenant][round_index]
                if job.state is JobState.REJECTED:
                    # Backpressure under --queue-cap is an expected outcome, not a
                    # failure; the count is already in the summary line below.
                    print(f"job {job.job_id} ({tenant}) rejected: {job.error}", file=out)
                    continue
                if job.result is None:
                    failures += 1
                    print(f"job {job.job_id} ({tenant}) failed: {job.error}", file=out)
                    continue
                baseline = run_unshielded_baseline(
                    accelerator,
                    accelerator.build_shield_config(),
                    all_inputs[(tenant, round_index)],
                )
                if not outputs_equal(baseline.outputs, job.result.outputs):
                    mismatches += 1
        leaks = sum(
            len(service.plaintext_exposures(plaintext))
            for inputs in all_inputs.values()
            for plaintext in inputs.values()
        )
        for tenant, session in sessions.items():
            usage = session.usage
            print(
                f"tenant {tenant:<12} : {usage.jobs_completed} job(s) on "
                f"board(s) {sorted(set(session.boards_used))}, "
                f"{usage.dram_bytes_read + usage.dram_bytes_written} DRAM bytes moved",
                file=out,
            )
        print(f"failed jobs         : {failures}", file=out)
        print(f"rejected jobs       : {summary['jobs_rejected']}", file=out)
        print(f"shield loads        : {summary['shield_loads']} "
              f"(affinity hits {summary['affinity_hits']}, "
              f"hit rate {summary['affinity_hit_rate']:.0%})", file=out)
        print(f"baseline mismatches : {mismatches}", file=out)
        print(f"plaintext leaks     : {leaks}", file=out)
        print(
            f"fast crypto         : {bool(args.fast_crypto) or fast_path_enabled()}",
            file=out,
        )
        _export_obs(args, obs_handle, out)
    return 0 if mismatches == 0 and leaks == 0 and failures == 0 else 1


def run_serve_demo(args: argparse.Namespace, out=sys.stdout) -> int:
    """Three tenants racing through the asyncio request path."""
    import asyncio

    from repro.accelerators import (
        AffineTransformAccelerator,
        MatMulAccelerator,
        VectorAddAccelerator,
    )
    from repro.cloud import JobState, ShieldCloudService
    from repro.serve import AsyncShieldFrontend

    if args.boards < 1:
        print("error: --boards must be at least 1", file=out)
        return 2
    if args.jobs_per_tenant < 1:
        print("error: --jobs-per-tenant must be at least 1", file=out)
        return 2
    if args.job_retention < 1:
        print("error: --job-retention must be at least 1", file=out)
        return 2

    tenants = {
        "alice": VectorAddAccelerator(8 * 1024),
        "bob": MatMulAccelerator(32),
        "carol": AffineTransformAccelerator(64),
    }

    async def serve(service) -> list:
        sessions = {
            tenant: service.admit_tenant(tenant, accelerator)
            for tenant, accelerator in tenants.items()
        }
        async with AsyncShieldFrontend(
            service,
            rate_limit=args.rate_limit,
            burst=args.burst,
            max_pending=args.max_pending,
        ) as frontend:
            futures = []
            # Interleave the tenants round-robin so the streams genuinely
            # race for boards instead of arriving one tenant at a time.
            for round_index in range(args.jobs_per_tenant):
                for tenant, accelerator in tenants.items():
                    futures.append(
                        frontend.submit_nowait(
                            sessions[tenant].session_id,
                            inputs=accelerator.prepare_inputs(seed=round_index),
                        )
                    )
            return await asyncio.gather(*futures)

    with _obs_scope(args) as obs_handle:
        service = ShieldCloudService(
            num_boards=args.boards,
            fast_crypto=True if args.fast_crypto else None,
            policy=args.policy,
            affinity=not args.no_affinity,
            job_retention=args.job_retention,
        )
        jobs = asyncio.run(serve(service))
        summary = service.fleet_summary()
        completed = sum(1 for job in jobs if job.state is JobState.COMPLETED)
        print(f"fleet               : {args.boards} board(s), "
              f"{len(tenants)} concurrent tenant streams", file=out)
        print(f"policy              : {summary['policy']} "
              f"(affinity {'on' if summary['affinity'] else 'off'})", file=out)
        if args.rate_limit is not None:
            print(f"rate limit          : {args.rate_limit:g} job(s)/s per tenant",
                  file=out)
        if args.max_pending is not None:
            print(f"load shed           : queue depth > {args.max_pending}", file=out)
        for job in jobs:
            if job.state is JobState.REJECTED:
                print(f"job {job.job_id} ({job.tenant}) rejected: {job.error}",
                      file=out)
            elif job.state is not JobState.COMPLETED:
                print(f"job {job.job_id} ({job.tenant}) {job.state.value}: "
                      f"{job.error}", file=out)
        print(f"completed jobs      : {completed}/{len(jobs)}", file=out)
        print(f"rejected jobs       : {summary['jobs_rejected']} "
              f"(rate-limited {summary['jobs_ratelimited']}, "
              f"shed {summary['jobs_shed']})", file=out)
        print(f"shield loads        : {summary['shield_loads']} "
              f"(affinity hits {summary['affinity_hits']}, "
              f"hit rate {summary['affinity_hit_rate']:.0%})", file=out)
        print(f"retained jobs       : {len(service.terminal_jobs)} "
              f"(retention {args.job_retention})", file=out)
        failures = sum(1 for job in jobs if job.state is JobState.FAILED)
        print(f"failed jobs         : {failures}", file=out)
        _export_obs(args, obs_handle, out)
    return 0 if failures == 0 else 1


def run_cloud_trace(args: argparse.Namespace, out=sys.stdout) -> int:
    """Timed fleet replay: policy + affinity knobs over the CloudSimulator."""
    from repro.sim.cloud import CloudSimulator, default_mixed_trace, repeated_tenant_trace

    if args.boards < 1:
        print("error: --boards must be at least 1", file=out)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be at least 1", file=out)
        return 2
    trace = (
        repeated_tenant_trace(num_jobs=args.jobs)
        if args.repeated_tenant
        else default_mixed_trace()
    )
    with _obs_scope(args) as obs_handle:
        simulator = CloudSimulator(
            num_boards=args.boards, policy=args.policy, affinity=not args.no_affinity
        )
        result = simulator.replay_experiment(trace)
        print(render_experiment(result), file=out)
        meta = result.metadata
        print(file=out)
        print(f"policy            : {meta['policy']} "
              f"(affinity {'on' if meta['affinity'] else 'off'})", file=out)
        print(f"makespan          : {meta['makespan_s']} s", file=out)
        print(f"board utilization : {meta['board_utilization']:.0%}", file=out)
        print(f"shield loads      : {meta['shield_loads']} "
              f"(warm hits {meta['affinity_hits']}, "
              f"hit rate {meta['affinity_hit_rate']:.0%})", file=out)
        print(f"wait p50 / p99    : {meta['wait_p50_s']} s / {meta['wait_p99_s']} s",
              file=out)
        _export_obs(args, obs_handle, out)
    return 0


def run_shard_replay(args: argparse.Namespace, out=sys.stdout) -> int:
    """Shard-scale replay: generate a trace, route it, replay per shard."""
    import time

    from repro.cloud.shard import QueueDepthAutoscaler, replay_sharded
    from repro.sim.traces import generate_trace

    if args.shards < 1:
        print("error: --shards must be at least 1", file=out)
        return 2
    if args.boards_per_shard < 1:
        print("error: --boards-per-shard must be at least 1", file=out)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be at least 1", file=out)
        return 2
    if args.autoscale_max is not None and args.autoscale_max < args.boards_per_shard:
        print("error: --autoscale-max must be >= --boards-per-shard", file=out)
        return 2
    autoscaler_factory = None
    if args.autoscale_max is not None:
        def autoscaler_factory(shard, _max=args.autoscale_max,
                               _min=args.boards_per_shard):
            return QueueDepthAutoscaler(min_boards=_min, max_boards=_max)
    trace = generate_trace(
        args.jobs, seed=args.seed, arrival=args.arrival,
        rate_jobs_per_s=args.rate,
    )
    started = time.perf_counter()
    report = replay_sharded(
        trace,
        num_shards=args.shards,
        boards_per_shard=args.boards_per_shard,
        policy=args.policy,
        affinity=not args.no_affinity,
        executor=args.workers,
        autoscaler_factory=autoscaler_factory,
    )
    wall = time.perf_counter() - started
    print(render_experiment(report.to_experiment()), file=out)
    print(file=out)
    print(f"replayed          : {report.jobs} jobs / {len(report.shard_stats)} "
          f"shards ({args.workers} workers)", file=out)
    print(f"wall time         : {wall:.2f} s "
          f"({report.jobs / wall:.0f} jobs/s, "
          f"{wall / report.jobs * 1e6:.1f} us/job)", file=out)
    print(f"modelled makespan : {report.makespan_s:.1f} s", file=out)
    print(f"wait p50/p99/p999 : {report.wait_percentile(50.0):.1f} s / "
          f"{report.wait_percentile(99.0):.1f} s / "
          f"{report.wait_percentile(99.9):.1f} s", file=out)
    print(f"affinity hit rate : {report.affinity_hit_rate:.1%}", file=out)
    return 0


def run_trace_report(args: argparse.Namespace, out=sys.stdout) -> int:
    """Render the per-stage/per-tenant report from a JSONL trace file."""
    from repro.obs.exporters import read_jsonl
    from repro.obs.report import render_trace_report

    try:
        events = read_jsonl(args.trace_file)
    except FileNotFoundError:
        print(f"error: no trace file at {args.trace_file!r}", file=out)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    print(render_trace_report(events), file=out)
    return 0


def run_list(out=sys.stdout) -> int:
    print("accelerators:", file=out)
    for name in sorted(ALL_ACCELERATORS):
        print(f"  {name}", file=out)
    print("experiments:", file=out)
    for name in sorted(EXPERIMENTS):
        print(f"  {name}", file=out)
    print("boards:", file=out)
    for model in BoardModel:
        print(f"  {model.value}", file=out)
    return 0


def main(argv=None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "experiments":
        return run_experiments(args, out=out)
    if args.command == "deploy-demo":
        return run_deploy_demo(args, out=out)
    if args.command == "cloud-demo":
        return run_cloud_demo(args, out=out)
    if args.command == "serve-demo":
        return run_serve_demo(args, out=out)
    if args.command == "cloud-trace":
        return run_cloud_trace(args, out=out)
    if args.command == "shard-replay":
        return run_shard_replay(args, out=out)
    if args.command == "trace-report":
        return run_trace_report(args, out=out)
    return run_list(out=out)


if __name__ == "__main__":
    sys.exit(main())
