"""Shard-scale serving: consistent-hash session routing over N board fleets.

One :class:`~repro.cloud.service.ShieldCloudService` (and its timed twin,
:class:`~repro.sim.cloud.CloudSimulator`) models one fleet.  The ROADMAP's
north star is millions of tenant sessions, which no single fleet reaches --
so this module adds the scale-out layer:

* :class:`ShardRouter` -- a consistent-hash ring with virtual nodes that maps
  every session id to one shard.  Sessions are *sticky*: once routed, a
  session stays on its shard until an explicit :meth:`ShardRouter.rebalance`
  or :meth:`ShardRouter.remove_shard`, so warm-Shield affinity remains a
  shard-local property (a session's warm boards are always inside the shard
  that serves it).  Virtual nodes keep the key space balanced, and the ring
  structure guarantees that adding or removing one of N shards remaps only
  ~1/N of the sessions (the minimal-disruption invariant the property tests
  pin down).
* :class:`QueueDepthAutoscaler` -- a deterministic queue-depth-driven
  controller the simulator consults as modelled time advances.  It grows a
  shard's fleet with cold boards when the backlog per board crosses the high
  watermark and drains idle boards (longest idle first -- busy boards are
  never revoked) once the backlog falls below the low watermark.
* :func:`replay_sharded` -- the multi-fleet replay driver: partition a trace
  by routed session, replay every shard on its own
  :class:`~repro.sim.cloud.CloudSimulator` via ``concurrent.futures`` (one
  worker per shard), and merge the per-shard
  :class:`~repro.sim.cloud.ReplayStats` into a single
  :class:`ShardReplayReport` with *global* tail percentiles.

The driver is how the scheduling core gets validated at 10^5-10^6-job scale
where the functional byte-moving service is too expensive to run; see
``docs/sharding.md`` and ``benchmarks/test_shard_scale.py``.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.analysis.annotations import executor_side, loop_owned
from repro.errors import ShardingError
from repro.obs.stats import percentile
from repro.sim.results import ExperimentResult

__all__ = [
    "DEFAULT_VNODES",
    "QueueDepthAutoscaler",
    "ShardReplayReport",
    "ShardRouter",
    "partition_trace",
    "replay_sharded",
]

#: Default virtual nodes per shard.  128 points per shard keeps the expected
#: per-shard key share within a few percent of 1/N (see the balance property
#: test) while the ring stays small enough that rebuilds are trivial.
DEFAULT_VNODES = 128


def _ring_hash(token: str) -> int:
    """Position of ``token`` on the ring: a 64-bit blake2b digest.

    blake2b is stdlib, keyless here (placement is not a security boundary --
    tenant isolation lives in the crypto layer), stable across processes and
    Python versions (unlike ``hash()``, which is salted per process), and
    uniform enough that virtual nodes balance the key space.
    """
    return int.from_bytes(
        hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest(), "big"
    )


class ShardRouter:
    """Consistent-hash ring with virtual nodes and sticky session assignments.

    ``route(session)`` is the serving-path entry point: the first call walks
    the ring (binary search over the vnode positions) and *pins* the session
    to the owning shard; later calls return the pinned shard unconditionally.
    Pinning is what keeps warm-Shield affinity shard-local -- a session never
    silently migrates mid-stream, even while shards are being added, so its
    warm boards stay valid until an explicit :meth:`rebalance` migrates it
    (paying one cold Shield load on the new shard, exactly like a warm-board
    eviction inside a single fleet).

    ``drain(shard)`` removes a shard's virtual nodes from the ring without
    touching its pinned sessions: no *new* session lands there, existing ones
    finish in place, and a later :meth:`rebalance` (or :meth:`remove_shard`)
    moves the stragglers off.  That is the same retire-only-idle semantics
    the :class:`QueueDepthAutoscaler` applies to individual boards, one level
    up the hierarchy.
    """

    def __init__(self, shard_ids, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ShardingError("vnodes must be positive")
        self.vnodes = vnodes
        self._shards: set = set()
        self._draining: set = set()
        #: Sorted vnode positions and the shard owning each (parallel lists).
        self._ring_keys: list = []
        self._ring_shards: list = []
        #: session id -> pinned shard (sticky until rebalance/remove).
        self._assignments: dict = {}
        shard_ids = list(shard_ids)
        if not shard_ids:
            raise ShardingError("a shard router needs at least one shard")
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # -- ring maintenance ---------------------------------------------------------

    def _vnode_tokens(self, shard_id) -> list:
        return [f"{shard_id}#{i}" for i in range(self.vnodes)]

    @loop_owned
    def add_shard(self, shard_id) -> None:
        """Insert a shard's virtual nodes into the ring.

        Existing sessions stay pinned where they are; only future (or
        rebalanced) sessions can land on the new shard -- so scaling out is
        zero-disruption until the operator opts into a rebalance.
        """
        if shard_id in self._shards:
            raise ShardingError(f"shard {shard_id!r} is already on the ring")
        self._shards.add(shard_id)
        for token in self._vnode_tokens(shard_id):
            position = _ring_hash(token)
            index = bisect.bisect_left(self._ring_keys, position)
            self._ring_keys.insert(index, position)
            self._ring_shards.insert(index, shard_id)

    def _strip_vnodes(self, shard_id) -> None:
        keep = [i for i, s in enumerate(self._ring_shards) if s != shard_id]
        self._ring_keys = [self._ring_keys[i] for i in keep]
        self._ring_shards = [self._ring_shards[i] for i in keep]

    @loop_owned
    def drain(self, shard_id) -> list:
        """Stop routing *new* sessions to the shard; pinned sessions remain.

        Returns the sessions still pinned to the draining shard (the
        operator's work list).  A drained shard leaves the ring, so
        :meth:`lookup` never returns it, but :meth:`route` keeps honouring
        existing pins until :meth:`rebalance` or :meth:`remove_shard`.
        """
        if shard_id not in self._shards:
            raise ShardingError(f"shard {shard_id!r} is not on the ring")
        if len(self._shards - self._draining) <= 1:
            raise ShardingError("cannot drain the last active shard")
        self._draining.add(shard_id)
        self._strip_vnodes(shard_id)
        return sorted(
            session for session, owner in self._assignments.items()
            if owner == shard_id
        )

    @loop_owned
    def remove_shard(self, shard_id) -> dict:
        """Drop a shard entirely, re-pinning its sessions via the ring.

        Returns ``{session: new_shard}`` for every migrated session.  Only
        the removed shard's sessions move -- every other pin is untouched,
        which is the minimal-disruption half of the consistent-hash bargain.
        """
        if shard_id not in self._shards:
            raise ShardingError(f"shard {shard_id!r} is not on the ring")
        if len(self._shards) <= 1:
            raise ShardingError("cannot remove the last shard")
        self._shards.discard(shard_id)
        self._draining.discard(shard_id)
        self._strip_vnodes(shard_id)
        if not self._ring_keys:
            raise ShardingError("removing the shard emptied the ring")
        moved = {}
        for session, owner in self._assignments.items():
            if owner == shard_id:
                moved[session] = self.lookup(session)
        self._assignments.update(moved)
        return moved

    @loop_owned
    def rebalance(self) -> dict:
        """Re-pin every session to its current ring owner.

        Returns ``{session: new_shard}`` for the sessions that moved.  After
        shards were added this migrates ~A/N of the sessions onto the A new
        shards; it also evacuates draining shards (their vnodes are already
        off the ring).  Each move costs the session one cold Shield load on
        its new shard -- the price of rebalancing, visible in the replay
        stats as a dip in the affinity hit-rate.
        """
        moved = {}
        for session, owner in self._assignments.items():
            target = self.lookup(session)
            if target != owner:
                moved[session] = target
        self._assignments.update(moved)
        return moved

    # -- routing ------------------------------------------------------------------

    def lookup(self, session_id: str):
        """Pure ring walk (no pinning): the shard owning ``session_id`` now.

        The first vnode clockwise from the session's hash owns it; the ring
        wraps at the top.  Draining shards own no vnodes, so they are never
        returned.
        """
        if not self._ring_keys:
            raise ShardingError("the ring has no active shards")
        index = bisect.bisect_right(self._ring_keys, _ring_hash(session_id))
        if index == len(self._ring_keys):
            index = 0
        return self._ring_shards[index]

    @loop_owned
    def route(self, session_id: str):
        """The serving-path lookup: pinned shard, or pin via the ring."""
        shard = self._assignments.get(session_id)
        if shard is None:
            shard = self.lookup(session_id)
            self._assignments[session_id] = shard
        return shard

    # -- introspection ------------------------------------------------------------

    @property
    def shards(self) -> list:
        """All shards, including draining ones, in sorted order."""
        return sorted(self._shards, key=str)

    @property
    def active_shards(self) -> list:
        """Shards currently receiving new sessions, in sorted order."""
        return sorted(self._shards - self._draining, key=str)

    @property
    def draining_shards(self) -> list:
        return sorted(self._draining, key=str)

    def assignment_counts(self) -> dict:
        """shard -> number of sessions currently pinned to it."""
        counts = {shard: 0 for shard in self._shards}
        for owner in self._assignments.values():
            counts[owner] = counts.get(owner, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._shards)


@dataclass
class QueueDepthAutoscaler:
    """Deterministic queue-depth autoscaling for one shard's board fleet.

    The simulator consults :meth:`target_boards` whenever modelled time
    advances.  The controller is proportional on the backlog: above the high
    watermark it asks for ``ceil(queue_depth / high_watermark)`` boards (the
    fleet that would bring the per-board backlog back to the watermark); at
    or below the low watermark it retires one board per cooldown window.
    Growth adds *cold* boards (their first job pays the full Shield load);
    shrinking is drain-only -- the simulator revokes idle boards, longest
    idle first, and a busy board simply finishes its work and falls idle
    before a later consult can retire it.  The cooldown gates scaling in
    *modelled* seconds, so decisions replay identically across runs and
    executors.
    """

    min_boards: int = 1
    max_boards: int = 64
    #: Queued jobs per board above which the fleet grows.
    high_watermark: float = 4.0
    #: Queued jobs per board at or below which the fleet shrinks by one.
    low_watermark: float = 0.5
    #: Minimum modelled seconds between scaling decisions.
    cooldown_s: float = 30.0
    _last_scale_s: float = field(default=float("-inf"), repr=False)

    def __post_init__(self):
        if self.min_boards < 1:
            raise ShardingError("min_boards must be positive")
        if self.max_boards < self.min_boards:
            raise ShardingError("max_boards must be >= min_boards")
        if self.low_watermark < 0 or self.high_watermark <= self.low_watermark:
            raise ShardingError("watermarks must satisfy 0 <= low < high")

    def target_boards(self, now_s: float, queue_depth: int, num_boards: int) -> int:
        """The board count the shard should run right now."""
        if now_s - self._last_scale_s < self.cooldown_s:
            return num_boards
        if queue_depth > self.high_watermark * num_boards:
            desired = math.ceil(queue_depth / self.high_watermark)
            target = min(self.max_boards, max(num_boards + 1, desired))
        elif queue_depth <= self.low_watermark * num_boards:
            target = max(self.min_boards, num_boards - 1)
        else:
            return num_boards
        if target != num_boards:
            self._last_scale_s = now_s
        return target


# -- multi-shard replay driver --------------------------------------------------


def partition_trace(trace: list, router: ShardRouter) -> dict:
    """Split a trace into per-shard traces by routed session.

    Events keep their relative order inside each shard (arrival order is
    re-derived by the simulator anyway), and routing *pins* every session on
    the router -- so a second partition of follow-on traffic lands sessions
    on the same shards.
    """
    shard_traces: dict = {shard: [] for shard in router.shards}
    route = router.route
    for event in trace:
        shard_traces[route(event.session_id or event.tenant)].append(event)
    return shard_traces


class _DefaultSimulatorFactory:
    """Picklable default simulator factory (process workers can't unpickle a
    closure, and every shard needs its *own* simulator so worker state never
    crosses shard boundaries)."""

    def __init__(self, boards_per_shard: int, policy, affinity: bool):
        self.boards_per_shard = boards_per_shard
        self.policy = policy
        self.affinity = affinity

    def __call__(self, shard_id):
        from repro.sim.cloud import CloudSimulator

        return CloudSimulator(
            num_boards=self.boards_per_shard,
            policy=self.policy,
            affinity=self.affinity,
        )


@executor_side
def _replay_one_shard(shard_id, events, simulator_factory, autoscaler):
    """Worker body: replay one shard's trace on its own simulator.

    Runs on an executor worker (thread or process).  Everything it touches
    is shard-private -- the simulator, the policy queue, and the board index
    are constructed here and die here; results flow back only through the
    returned :class:`~repro.sim.cloud.ReplayStats`.
    """
    simulator = simulator_factory(shard_id)
    return shard_id, simulator.replay_stats(events, autoscaler=autoscaler)


@dataclass
class ShardReplayReport:
    """Merged outcome of a multi-shard replay.

    Per-shard :class:`~repro.sim.cloud.ReplayStats` plus the global view:
    tail percentiles are computed over the *concatenated* per-job waits (a
    per-shard percentile average would understate the global tail), and
    throughput is total jobs over the driver's wall-clock time.
    """

    shard_stats: dict
    shard_jobs: dict
    boards_per_shard: int
    policy: str
    executor: str
    wall_s: float

    @property
    def shards(self) -> list:
        return sorted(self.shard_stats, key=str)

    @property
    def jobs(self) -> int:
        return sum(stats.jobs for stats in self.shard_stats.values())

    @property
    def warm_hits(self) -> int:
        return sum(stats.warm_hits for stats in self.shard_stats.values())

    @property
    def affinity_hit_rate(self) -> float:
        jobs = self.jobs
        return self.warm_hits / jobs if jobs else 0.0

    @property
    def makespan_s(self) -> float:
        """Modelled makespan: shards replay concurrently, so the max."""
        if not self.shard_stats:
            return 0.0
        return max(stats.makespan_s for stats in self.shard_stats.values())

    @property
    def jobs_per_sec(self) -> float:
        """Replay throughput (jobs over driver wall-clock seconds)."""
        return self.jobs / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def seconds_per_job(self) -> float:
        jobs = self.jobs
        return self.wall_s / jobs if jobs else 0.0

    def wait_percentile(self, q: float) -> float:
        """Global wait percentile over every shard's per-job waits."""
        merged: list = []
        for stats in self.shard_stats.values():
            merged.extend(stats.waits)
        return percentile(merged, q)

    @property
    def utilization_by_shard(self) -> dict:
        return {
            shard: stats.utilization for shard, stats in self.shard_stats.items()
        }

    def to_experiment(self, experiment_id: str = "shard-replay") -> ExperimentResult:
        """Package the merged replay as a renderable/exportable experiment."""
        result = ExperimentResult(
            experiment_id=experiment_id,
            description=(
                f"{self.jobs} jobs across {len(self.shard_stats)} shards x "
                f"{self.boards_per_shard} boards ({self.policy} policy, "
                f"{self.executor} workers)"
            ),
            metadata={
                "shards": len(self.shard_stats),
                "boards_per_shard": self.boards_per_shard,
                "policy": self.policy,
                "executor": self.executor,
                "jobs": self.jobs,
                "makespan_s": round(self.makespan_s, 3),
                "wall_s": round(self.wall_s, 4),
                "jobs_per_sec": round(self.jobs_per_sec, 1),
                "wait_p50_s": round(self.wait_percentile(50.0), 3),
                "wait_p99_s": round(self.wait_percentile(99.0), 3),
                "wait_p999_s": round(self.wait_percentile(99.9), 3),
                "affinity_hit_rate": round(self.affinity_hit_rate, 4),
            },
        )
        for shard in self.shards:
            stats = self.shard_stats[shard]
            result.add_row(
                shard=shard,
                jobs=stats.jobs,
                makespan_s=round(stats.makespan_s, 3),
                utilization=round(stats.utilization, 4),
                affinity_hit_rate=round(stats.affinity_hit_rate, 4),
                warm_hits=stats.warm_hits,
                wait_p99_s=round(stats.wait_percentile(99.0), 3),
                final_boards=stats.final_boards,
                scale_events=len(stats.scale_events),
            )
        return result


def replay_sharded(
    trace: list,
    num_shards: int = 8,
    boards_per_shard: int = 4,
    router: ShardRouter | None = None,
    policy="fifo",
    affinity: bool = True,
    executor: str = "thread",
    max_workers: int | None = None,
    autoscaler_factory=None,
    simulator_factory=None,
) -> ShardReplayReport:
    """Replay a trace across N shard fleets, one worker per shard.

    ``router`` defaults to a fresh :class:`ShardRouter` over shards
    ``0..num_shards-1``; pass one to reuse pinned assignments across calls.
    ``executor`` is ``"thread"`` (default -- the replay is cheap enough that
    process spawn + trace pickling costs more than the GIL does),
    ``"process"`` (true parallelism for very heavy per-shard models), or
    ``"serial"`` (in-line, for debugging and deterministic profiles).
    ``autoscaler_factory(shard_id)`` builds one autoscaler per shard (state
    is per-fleet, so instances must not be shared); ``simulator_factory``
    overrides simulator construction entirely (same signature).
    """
    if executor not in ("thread", "process", "serial"):
        raise ShardingError(f"unknown executor {executor!r}")
    if router is None:
        router = ShardRouter(range(num_shards))
    if simulator_factory is None:
        simulator_factory = _DefaultSimulatorFactory(boards_per_shard, policy, affinity)
    shard_traces = partition_trace(trace, router)
    autoscalers = {
        shard: autoscaler_factory(shard) if autoscaler_factory else None
        for shard in shard_traces
    }
    started = time.perf_counter()
    shard_stats: dict = {}
    if executor == "serial":
        for shard, events in shard_traces.items():
            shard_stats[shard] = _replay_one_shard(
                shard, events, simulator_factory, autoscalers[shard]
            )[1]
    else:
        pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        workers = max_workers or len(shard_traces)
        with pool_cls(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _replay_one_shard,
                    shard,
                    events,
                    simulator_factory,
                    autoscalers[shard],
                )
                for shard, events in shard_traces.items()
            ]
            for future in futures:
                shard, stats = future.result()
                shard_stats[shard] = stats
    wall = time.perf_counter() - started
    return ShardReplayReport(
        shard_stats=shard_stats,
        shard_jobs={shard: len(events) for shard, events in shard_traces.items()},
        boards_per_shard=boards_per_shard,
        policy=str(policy),
        executor=executor,
        wall_s=wall,
    )
