"""Fleet scheduling: a policy-driven work queue over a pool of FPGA boards.

The scheduler is deterministic -- job order comes from a pluggable
:mod:`~repro.cloud.policies` policy (FIFO by default), and placement prefers
a board whose *warm* resident Shield already belongs to the job's session,
falling back to the free board that has been idle longest (round-robin
rotation over the fleet) -- so tests can assert exact placements.  It knows
nothing about tenants' keys: isolation lives in
:class:`~repro.cloud.service.ShieldCloudService`; the scheduler decides
*when* and *where* a job runs and enforces admission limits (a fleet-wide
queue cap and per-tenant queue quotas) at submit time.

Boards are released as soon as a job finishes.  With affinity enabled the
session's Shield stays resident on the released board, and a later job of the
same session placed there is a *warm hit* -- the service skips the
teardown+reload and the timed simulator prices the Shield load at zero.  A
different session landing on the board evicts the resident Shield first, so
the clean-slate guarantee between tenants is unchanged.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

import repro.obs as obs_api
from repro.analysis.annotations import loop_owned
from repro.cloud.policies import BoardIndex, JobRequest, make_policy
from repro.errors import AdmissionError, SchedulingError

#: Default per-board placement-history ring size.  Under sustained traffic the
#: history used to grow without bound; the ring keeps the recent tail for the
#: Admin story ("which tenants shared this board?") while
#: ``placement_totals`` preserves exact lifetime counts.
DEFAULT_HISTORY_LIMIT = 256


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    #: Refused at submit time by admission control (queue cap / tenant quota).
    REJECTED = "rejected"
    #: Dropped from the queue before placement (session closed).
    CANCELLED = "cancelled"


@dataclass
class AcceleratorJob:
    """One unit of scheduled work: run a session's accelerator over sealed inputs."""

    job_id: str
    session_id: str
    #: Owning tenant (fair-share accounting key; set by the service).
    tenant: str = ""
    #: Region name -> plaintext bytes the tenant wants staged (sealed client-side).
    inputs: dict = field(default_factory=dict)
    #: Region name -> plaintext length to download and unseal after the run
    #: (None downloads the whole region), or an ``(offset_chunks, length)``
    #: pair for a partial download starting mid-region.
    output_regions: dict = field(default_factory=dict)
    #: Keyword arguments forwarded to ``accelerator.run``.
    params: dict = field(default_factory=dict)
    #: Scheduling metadata consumed by the policy zoo.
    priority: int = 0
    weight: float = 1.0
    cost_estimate: float = 1.0
    #: Submission sequence number (assigned by the scheduler).
    seq: int = -1
    state: JobState = JobState.QUEUED
    board_name: str | None = None
    #: True when the job was placed on a board already holding its session's
    #: Shield (the load was skipped).
    warm_start: bool = False
    #: AcceleratorResult of the shielded run (set on completion).
    result: object | None = None
    #: Region name -> unsealed plaintext downloaded after the run.
    region_outputs: dict = field(default_factory=dict)
    error: str | None = None

    def request_view(self) -> JobRequest:
        """The policy-facing projection of this job."""
        return JobRequest(
            key=self.job_id,
            tenant=self.tenant or self.session_id,
            session_id=self.session_id,
            seq=self.seq,
            priority=self.priority,
            weight=self.weight,
            cost_estimate=self.cost_estimate,
        )


class FleetScheduler:
    """Policy-driven queue + warm-affinity placement over a fixed fleet."""

    def __init__(
        self,
        board_names: list,
        policy="fifo",
        affinity: bool = True,
        queue_cap: int | None = None,
        tenant_quota: int | None = None,
        history_limit: int | None = DEFAULT_HISTORY_LIMIT,
        metrics=None,
    ):
        """``metrics`` is the registry the scheduler publishes its queue-depth
        and busy-board gauges into; the default snapshots the process-wide
        :func:`repro.obs.current` registry at construction time (the service
        passes its own, so the gauges land next to the service counters)."""
        if not board_names:
            raise SchedulingError("a fleet needs at least one board")
        if queue_cap is not None and queue_cap < 1:
            raise SchedulingError("queue_cap must be positive (or None for unbounded)")
        if tenant_quota is not None and tenant_quota < 1:
            raise SchedulingError("tenant_quota must be positive (or None for unbounded)")
        self._board_names = list(board_names)
        self.policy = make_policy(policy)
        #: Indexed policy queue: O(log n) selection, selection-identical to
        #: the linear scans (see :class:`~repro.cloud.policies.PolicyQueue`).
        self._queue = self.policy.make_queue()
        self.affinity = bool(affinity)
        self.queue_cap = queue_cap
        self.tenant_quota = tenant_quota
        #: board name -> session the board's resident (warm) Shield belongs to.
        #: Shared with the :class:`BoardIndex`, so ``evict`` is one dict write.
        self.resident_sessions: dict = {name: None for name in board_names}
        #: Incremental free-fleet + warm-affinity index (replaces rebuilding
        #: BoardView lists per dispatch).
        self._boards = BoardIndex(board_names, resident=self.resident_sessions)
        #: board name -> recent session ids placed on it (bounded ring).
        self._history: dict = {
            name: deque(maxlen=history_limit) for name in board_names
        }
        #: board name -> lifetime placement count (survives ring eviction).
        self.placement_totals: dict = {name: 0 for name in board_names}
        self._seq = 0
        self.affinity_hits = 0
        self.jobs_rejected = 0
        self.jobs_cancelled = 0
        self.metrics = metrics if metrics is not None else obs_api.current().metrics
        self._gauge_update()

    def _gauge_update(self) -> None:
        self.metrics.gauge("cloud.queue_depth").set(len(self._queue))
        self.metrics.gauge("cloud.busy_boards").set(self.busy_boards)

    @property
    def placement_history(self) -> dict:
        """board name -> recent session ids, oldest first (ring-buffered)."""
        return {name: list(ring) for name, ring in self._history.items()}

    # -- queueing -----------------------------------------------------------------

    @loop_owned
    def submit(self, job: AcceleratorJob) -> None:
        """Queue a job, enforcing the fleet cap and the tenant quota.

        Raises :class:`~repro.errors.AdmissionError` (and marks the job
        ``REJECTED``) when a limit is hit -- backpressure is a first-class
        outcome, not a crash.
        """
        if job.state is not JobState.QUEUED:
            raise SchedulingError(f"job {job.job_id!r} is not in the QUEUED state")
        if self.queue_cap is not None and len(self._queue) >= self.queue_cap:
            self._reject(job, f"fleet queue is full ({self.queue_cap} job(s) pending)")
        if self.tenant_quota is not None:
            tenant = job.tenant or job.session_id
            pending = self._queue.pending_for(tenant)
            if pending >= self.tenant_quota:
                self._reject(
                    job,
                    f"tenant {tenant!r} already has {pending} job(s) queued "
                    f"(quota {self.tenant_quota})",
                )
        self._seq += 1
        job.seq = self._seq
        self._queue.push(job.request_view(), job)
        self._gauge_update()

    def _reject(self, job: AcceleratorJob, reason: str) -> None:
        job.state = JobState.REJECTED
        job.error = reason
        self.jobs_rejected += 1
        raise AdmissionError(reason)

    @property
    def pending_jobs(self) -> int:
        return len(self._queue)

    def pending_for_tenant(self, tenant: str) -> int:
        return self._queue.pending_for(tenant)

    @property
    def free_boards(self) -> int:
        return len(self._boards)

    @property
    def busy_boards(self) -> int:
        return len(self._board_names) - len(self._boards)

    # -- placement ----------------------------------------------------------------

    @loop_owned
    def acquire(self, eligible=None) -> tuple | None:
        """Pick (policy) and place (affinity) the next job.

        Returns ``(job, board_name, warm)`` -- ``warm`` is True when the board
        already holds the job's session's Shield -- or ``None`` if the queue
        is empty, the fleet is saturated, or no queued job passes
        ``eligible``.  ``eligible`` is an optional per-job predicate the
        policy choice is restricted to; the async front-end uses it to keep
        at most one job of a session in flight (two concurrent jobs of one
        session would race on the session's key rotation).  Ineligible jobs
        stay queued in their original order.
        """
        if not self._queue or not self._boards:
            return None
        popped = self._queue.pop(eligible)
        if popped is None:
            return None
        view, job = popped
        board_name = self._boards.place(job.session_id, prefer_affinity=self.affinity)
        warm = self.affinity and self.resident_sessions[board_name] == job.session_id
        if warm:
            self.affinity_hits += 1
        job.state = JobState.RUNNING
        job.board_name = board_name
        job.warm_start = warm
        self._history[board_name].append(job.session_id)
        self.placement_totals[board_name] += 1
        self.policy.record_service(view)
        self._gauge_update()
        return job, board_name, warm

    @loop_owned
    def release(self, job: AcceleratorJob, completed: bool, error: str | None = None) -> None:
        """Return the job's board to the free pool and finalize its state.

        With affinity enabled, a *successful* job leaves its session's Shield
        resident on the board (the next same-session job is a warm hit); a
        failed job never does -- the service tears the Shield down to restore
        the clean slate, and the residency record must agree.
        """
        if job.state is not JobState.RUNNING or job.board_name is None:
            raise SchedulingError(f"job {job.job_id!r} is not running on any board")
        keep_warm = self.affinity and completed
        self.resident_sessions[job.board_name] = job.session_id if keep_warm else None
        self._boards.release(job.board_name)
        job.state = JobState.COMPLETED if completed else JobState.FAILED
        job.error = error
        self._gauge_update()

    @loop_owned
    def evict(self, board_name: str) -> None:
        """Forget the board's resident Shield (the service tore it down)."""
        self.resident_sessions[board_name] = None

    def boards_resident_for(self, session_id: str) -> list:
        """Boards currently holding this session's warm Shield."""
        return [
            name for name, resident in self.resident_sessions.items()
            if resident == session_id
        ]

    @loop_owned
    def cancel_queued(
        self,
        predicate=None,
        reason: str = "cancelled before the job was scheduled",
    ) -> list:
        """Cancel every queued job matching ``predicate`` (all jobs if None).

        Cancellation is one pass over the queue (the indexed queues mark
        matching cells dead in place); survivors keep their relative order,
        so policy tie-breaks are unchanged.
        """
        cancelled = [job for _, job in self._queue.remove(predicate)]
        if not cancelled:
            return []
        for job in cancelled:
            job.state = JobState.CANCELLED
            job.error = reason
        self.jobs_cancelled += len(cancelled)
        self._gauge_update()
        return cancelled

    @loop_owned
    def cancel_session_jobs(self, session_id: str) -> list:
        """Cancel still-queued jobs of a session (used at session teardown)."""
        return self.cancel_queued(
            lambda job: job.session_id == session_id,
            reason="session closed before the job was scheduled",
        )
