"""Fleet scheduling: a FIFO work queue over a pool of FPGA boards.

The scheduler is deliberately simple and deterministic -- jobs run in
submission order, each on the free board that has been idle longest
(round-robin rotation over the fleet) -- so tests can assert exact
placements.  It knows nothing about tenants or keys: admission control and
isolation live in :class:`~repro.cloud.service.ShieldCloudService`; the
scheduler only decides *when* and *where* a job runs.

Boards are released as soon as a job finishes (the Shield is torn off the
board between jobs), so a two-board fleet time-multiplexes any number of
concurrent tenant sessions, and the rotation spreads Shield loads across the
fleet even when jobs happen to execute back-to-back.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.errors import SchedulingError


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class AcceleratorJob:
    """One unit of scheduled work: run a session's accelerator over sealed inputs."""

    job_id: str
    session_id: str
    #: Region name -> plaintext bytes the tenant wants staged (sealed client-side).
    inputs: dict = field(default_factory=dict)
    #: Region name -> plaintext length to download and unseal after the run
    #: (None downloads the whole region), or an ``(offset_chunks, length)``
    #: pair for a partial download starting mid-region.
    output_regions: dict = field(default_factory=dict)
    #: Keyword arguments forwarded to ``accelerator.run``.
    params: dict = field(default_factory=dict)
    state: JobState = JobState.QUEUED
    board_name: str | None = None
    #: AcceleratorResult of the shielded run (set on completion).
    result: object | None = None
    #: Region name -> unsealed plaintext downloaded after the run.
    region_outputs: dict = field(default_factory=dict)
    error: str | None = None


class FleetScheduler:
    """FIFO queue + longest-idle-board (round-robin) placement over a fixed fleet."""

    def __init__(self, board_names: list):
        if not board_names:
            raise SchedulingError("a fleet needs at least one board")
        self._board_names = list(board_names)
        self._free_boards = deque(board_names)
        self._queue: deque = deque()
        #: board name -> session ids that have run on it, in order (for tests
        #: and for the Admin story "which tenants shared this board?").
        self.placement_history: dict = {name: [] for name in board_names}

    # -- queueing -----------------------------------------------------------------

    def submit(self, job: AcceleratorJob) -> None:
        if job.state is not JobState.QUEUED:
            raise SchedulingError(f"job {job.job_id!r} is not in the QUEUED state")
        self._queue.append(job)

    @property
    def pending_jobs(self) -> int:
        return len(self._queue)

    @property
    def free_boards(self) -> int:
        return len(self._free_boards)

    @property
    def busy_boards(self) -> int:
        return len(self._board_names) - len(self._free_boards)

    # -- placement ----------------------------------------------------------------

    def acquire(self) -> tuple | None:
        """Pop the next job and a free board; ``None`` if either is missing."""
        if not self._queue or not self._free_boards:
            return None
        job = self._queue.popleft()
        board_name = self._free_boards.popleft()
        job.state = JobState.RUNNING
        job.board_name = board_name
        self.placement_history[board_name].append(job.session_id)
        return job, board_name

    def release(self, job: AcceleratorJob, completed: bool, error: str | None = None) -> None:
        """Return the job's board to the free pool and finalize its state."""
        if job.state is not JobState.RUNNING or job.board_name is None:
            raise SchedulingError(f"job {job.job_id!r} is not running on any board")
        self._free_boards.append(job.board_name)
        job.state = JobState.COMPLETED if completed else JobState.FAILED
        job.error = error

    def drop_session_jobs(self, session_id: str) -> list:
        """Remove still-queued jobs of a session (used at session teardown)."""
        dropped = [job for job in self._queue if job.session_id == session_id]
        for job in dropped:
            self._queue.remove(job)
            job.state = JobState.FAILED
            job.error = "session closed before the job was scheduled"
        return dropped
