"""The shared scheduling core: one policy implementation, two consumers.

Scheduling logic used to live twice -- functionally in
:class:`~repro.cloud.scheduler.FleetScheduler` (which moves real bytes) and
analytically in :class:`~repro.sim.cloud.CloudSimulator` (which prices time)
-- and the two could silently diverge.  This module is the single source of
truth both import:

* a **policy zoo** deciding *which* queued job runs next -- FIFO, strict
  priority, weighted fair-share per tenant, and shortest-job-first -- over a
  neutral :class:`JobRequest` view that either consumer can build from its
  own job representation, and
* a **placement rule**, :func:`choose_board`, deciding *where* the job runs:
  among the available boards, prefer one whose resident (warm) Shield already
  belongs to the job's session, otherwise the longest-idle board.  Warm
  placement is what turns the paper's ~6.2 s partial-reconfiguration Shield
  load (Section 6.1) from a per-job cost into a per-session one.

Policies are small stateful objects (weighted fair-share accumulates served
cost per tenant), so each scheduler or simulator instantiates its own via
:func:`make_policy` and replays stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import SchedulingError


@dataclass(frozen=True)
class JobRequest:
    """A policy's view of one queued job (no bytes, no Shield, no board)."""

    key: str
    tenant: str
    session_id: str
    #: Monotonic submission sequence number -- the FIFO axis and the
    #: deterministic tie-break for every other policy.
    seq: int
    #: Larger runs earlier under :class:`PriorityPolicy`.
    priority: int = 0
    #: Fair-share weight of the job's tenant (> 0).
    weight: float = 1.0
    #: Estimated service cost: modelled seconds in the simulator, a
    #: caller-supplied estimate (default 1.0 == "count jobs") functionally.
    cost_estimate: float = 1.0


@dataclass(frozen=True)
class BoardView:
    """A policy's view of one *available* board at placement time."""

    name: str
    #: Preference order among the available boards (0 = longest idle /
    #: earliest released).  Ties never occur: ranks are distinct by
    #: construction.
    rank: int
    #: Session whose Shield is still resident (warm) on the board, if any.
    resident_session: Optional[str] = None


class SchedulingPolicy:
    """Base class: pick the next job out of the queue.

    ``select`` returns an *index* into the queue snapshot it is given; the
    caller pops that entry.  ``record_service`` feeds served cost back so
    stateful policies (fair-share) can steer future picks; stateless policies
    ignore it.
    """

    name = "base"

    def select(self, queue: Sequence[JobRequest]) -> int:
        raise NotImplementedError

    def record_service(self, request: JobRequest, cost: Optional[float] = None) -> None:
        """Account ``cost`` (default: the request's estimate) as served."""

    def snapshot(self) -> dict:
        """Policy-internal state for reporting (empty for stateless policies)."""
        return {}


class FifoPolicy(SchedulingPolicy):
    """Strict arrival order (the seed's only behaviour)."""

    name = "fifo"

    def select(self, queue: Sequence[JobRequest]) -> int:
        return min(range(len(queue)), key=lambda i: queue[i].seq)


class PriorityPolicy(SchedulingPolicy):
    """Highest priority first; FIFO among equals."""

    name = "priority"

    def select(self, queue: Sequence[JobRequest]) -> int:
        return min(range(len(queue)), key=lambda i: (-queue[i].priority, queue[i].seq))


class ShortestJobFirstPolicy(SchedulingPolicy):
    """Smallest estimated cost first; FIFO among equals (minimizes mean wait)."""

    name = "sjf"

    def select(self, queue: Sequence[JobRequest]) -> int:
        return min(range(len(queue)), key=lambda i: (queue[i].cost_estimate, queue[i].seq))


class WeightedFairSharePolicy(SchedulingPolicy):
    """Serve the tenant with the smallest weighted served cost.

    Each tenant accumulates ``served / weight``; the next job comes from the
    queued tenant with the lowest normalized share (FIFO within a tenant, and
    FIFO between tenants at equal share).  With unit costs and unit weights
    this degrades to round-robin over tenants -- the textbook max-min share.
    """

    name = "fair"

    def __init__(self) -> None:
        self._served: dict = {}

    def select(self, queue: Sequence[JobRequest]) -> int:
        def rank(i: int):
            request = queue[i]
            share = self._served.get(request.tenant, 0.0) / max(request.weight, 1e-12)
            return (share, request.seq)

        return min(range(len(queue)), key=rank)

    def record_service(self, request: JobRequest, cost: Optional[float] = None) -> None:
        amount = request.cost_estimate if cost is None else cost
        self._served[request.tenant] = self._served.get(request.tenant, 0.0) + amount

    def snapshot(self) -> dict:
        return {"served": dict(self._served)}


#: Registry of the policy zoo, keyed by CLI-facing name.
POLICIES = {
    policy.name: policy
    for policy in (FifoPolicy, PriorityPolicy, WeightedFairSharePolicy, ShortestJobFirstPolicy)
}

POLICY_NAMES = tuple(sorted(POLICIES))


def make_policy(policy) -> SchedulingPolicy:
    """Resolve a policy name / class / instance into a fresh-enough instance.

    Names and classes construct a new instance (so two schedulers never share
    fair-share state); an instance is passed through as-is for callers that
    want to pre-seed or share state deliberately.
    """
    if isinstance(policy, SchedulingPolicy):
        return policy
    if isinstance(policy, type) and issubclass(policy, SchedulingPolicy):
        return policy()
    try:
        return POLICIES[policy]()
    except (KeyError, TypeError):
        raise SchedulingError(
            f"unknown scheduling policy {policy!r}; known: {', '.join(POLICY_NAMES)}"
        ) from None


def choose_board(
    request: JobRequest,
    boards: Sequence[BoardView],
    prefer_affinity: bool = True,
) -> BoardView:
    """Pick the board for a selected job: warm affinity first, then rank.

    With ``prefer_affinity``, a board whose resident Shield belongs to the
    job's session wins (skipping the partial-reconfiguration load); otherwise
    -- and among several warm candidates -- the lowest rank (longest idle)
    wins, which rotates load across the fleet exactly like the seed's
    round-robin.
    """
    if not boards:
        raise SchedulingError("choose_board needs at least one available board")
    if prefer_affinity:
        warm = [b for b in boards if b.resident_session == request.session_id]
        if warm:
            return min(warm, key=lambda b: b.rank)
    return min(boards, key=lambda b: b.rank)
