"""The shared scheduling core: one policy implementation, two consumers.

Scheduling logic used to live twice -- functionally in
:class:`~repro.cloud.scheduler.FleetScheduler` (which moves real bytes) and
analytically in :class:`~repro.sim.cloud.CloudSimulator` (which prices time)
-- and the two could silently diverge.  This module is the single source of
truth both import:

* a **policy zoo** deciding *which* queued job runs next -- FIFO, strict
  priority, weighted fair-share per tenant, and shortest-job-first -- over a
  neutral :class:`JobRequest` view that either consumer can build from its
  own job representation, and
* a **placement rule**, :func:`choose_board`, deciding *where* the job runs:
  among the available boards, prefer one whose resident (warm) Shield already
  belongs to the job's session, otherwise the longest-idle board.  Warm
  placement is what turns the paper's ~6.2 s partial-reconfiguration Shield
  load (Section 6.1) from a per-job cost into a per-session one.

Policies are small stateful objects (weighted fair-share accumulates served
cost per tenant), so each scheduler or simulator instantiates its own via
:func:`make_policy` and replays stay deterministic.

Selection used to be a linear ``min()`` scan over a queue snapshot on every
dispatch -- O(n) per pick, O(n^2) per drained queue -- which capped replays at
thousands of jobs.  Each policy now also vends an **indexed queue**
(:meth:`SchedulingPolicy.make_queue`): FIFO rides a deque, priority and SJF
ride lazy-deletion heaps, and weighted fair-share rides a lazily re-keyed
heap, so both consumers pick the next job in O(log n) while staying
*selection-identical* to the linear scans (the conformance suite asserts it,
seq tie-breaks included).  :class:`BoardIndex` does the same for placement:
instead of rebuilding a :class:`BoardView` list per dispatch it keeps the
free fleet and the per-session warm boards in incrementally maintained heaps.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import SchedulingError


@dataclass(frozen=True, slots=True)
class JobRequest:
    """A policy's view of one queued job (no bytes, no Shield, no board)."""

    key: str
    tenant: str
    session_id: str
    #: Monotonic submission sequence number -- the FIFO axis and the
    #: deterministic tie-break for every other policy.
    seq: int
    #: Larger runs earlier under :class:`PriorityPolicy`.
    priority: int = 0
    #: Fair-share weight of the job's tenant (> 0).
    weight: float = 1.0
    #: Estimated service cost: modelled seconds in the simulator, a
    #: caller-supplied estimate (default 1.0 == "count jobs") functionally.
    cost_estimate: float = 1.0


@dataclass(frozen=True)
class BoardView:
    """A policy's view of one *available* board at placement time."""

    name: str
    #: Preference order among the available boards (0 = longest idle /
    #: earliest released).  Ties never occur: ranks are distinct by
    #: construction.
    rank: int
    #: Session whose Shield is still resident (warm) on the board, if any.
    resident_session: Optional[str] = None


class SchedulingPolicy:
    """Base class: pick the next job out of the queue.

    ``select`` returns an *index* into the queue snapshot it is given; the
    caller pops that entry.  ``record_service`` feeds served cost back so
    stateful policies (fair-share) can steer future picks; stateless policies
    ignore it.
    """

    name = "base"

    def select(self, queue: Sequence[JobRequest]) -> int:
        raise NotImplementedError

    def record_service(self, request: JobRequest, cost: Optional[float] = None) -> None:
        """Account ``cost`` (default: the request's estimate) as served."""

    def snapshot(self) -> dict:
        """Policy-internal state for reporting (empty for stateless policies)."""
        return {}

    def make_queue(self) -> "PolicyQueue":
        """An indexed queue bound to this policy instance.

        The base implementation wraps :meth:`select` in a linear-scan queue,
        so third-party policies work unchanged; the built-in policies
        override it with O(log n) structures that are selection-identical to
        their linear scans.
        """
        return LinearPolicyQueue(self)


class FifoPolicy(SchedulingPolicy):
    """Strict arrival order (the seed's only behaviour)."""

    name = "fifo"

    def select(self, queue: Sequence[JobRequest]) -> int:
        return min(range(len(queue)), key=lambda i: queue[i].seq)

    def make_queue(self) -> "PolicyQueue":
        return FifoQueue(self)


class PriorityPolicy(SchedulingPolicy):
    """Highest priority first; FIFO among equals."""

    name = "priority"

    def select(self, queue: Sequence[JobRequest]) -> int:
        return min(range(len(queue)), key=lambda i: (-queue[i].priority, queue[i].seq))

    def make_queue(self) -> "PolicyQueue":
        return HeapPolicyQueue(self, lambda r: (-r.priority, r.seq))


class ShortestJobFirstPolicy(SchedulingPolicy):
    """Smallest estimated cost first; FIFO among equals (minimizes mean wait)."""

    name = "sjf"

    def select(self, queue: Sequence[JobRequest]) -> int:
        return min(range(len(queue)), key=lambda i: (queue[i].cost_estimate, queue[i].seq))

    def make_queue(self) -> "PolicyQueue":
        return HeapPolicyQueue(self, lambda r: (r.cost_estimate, r.seq))


class WeightedFairSharePolicy(SchedulingPolicy):
    """Serve the tenant with the smallest weighted served cost.

    Each tenant accumulates ``served / weight``; the next job comes from the
    queued tenant with the lowest normalized share (FIFO within a tenant, and
    FIFO between tenants at equal share).  With unit costs and unit weights
    this degrades to round-robin over tenants -- the textbook max-min share.
    """

    name = "fair"

    def __init__(self) -> None:
        self._served: dict = {}

    def select(self, queue: Sequence[JobRequest]) -> int:
        def rank(i: int):
            request = queue[i]
            share = self._served.get(request.tenant, 0.0) / max(request.weight, 1e-12)
            return (share, request.seq)

        return min(range(len(queue)), key=rank)

    def record_service(self, request: JobRequest, cost: Optional[float] = None) -> None:
        amount = request.cost_estimate if cost is None else cost
        self._served[request.tenant] = self._served.get(request.tenant, 0.0) + amount

    def snapshot(self) -> dict:
        return {"served": dict(self._served)}

    def make_queue(self) -> "PolicyQueue":
        return FairShareQueue(self)


# ---------------------------------------------------------------------------
# Indexed policy queues: O(log n) selection, selection-identical to select()
# ---------------------------------------------------------------------------


class PolicyQueue:
    """An incrementally indexed job queue bound to one policy instance.

    The linear protocol (snapshot the queue, ``select`` an index, pop it)
    re-ranks every queued job on every dispatch; at 10^5-job replay depths
    that is quadratic.  A ``PolicyQueue`` keeps the ranking structure *live*
    across dispatches: ``push`` indexes one arrival, ``pop`` removes and
    returns the exact job ``select`` would have picked.

    ``payload`` is whatever the consumer wants back alongside the
    :class:`JobRequest` (the functional scheduler stores the
    ``AcceleratorJob``, the simulator its ``TraceEvent``); ``pop``'s optional
    ``eligible`` predicate is called with the payload and skips jobs without
    disturbing their relative order.  ``remove`` supports cancellation by
    predicate; per-tenant pending counts are maintained so admission quotas
    stay O(1).
    """

    def __init__(self, policy: SchedulingPolicy):
        self.policy = policy
        self._len = 0
        self._tenant_pending: dict = {}

    # -- bookkeeping shared by every implementation --------------------------------

    def _count(self, request: JobRequest, delta: int) -> None:
        self._len += delta
        tenant = request.tenant
        pending = self._tenant_pending.get(tenant, 0) + delta
        if pending:
            self._tenant_pending[tenant] = pending
        else:
            self._tenant_pending.pop(tenant, None)

    def __len__(self) -> int:
        return self._len

    def pending_for(self, tenant: str) -> int:
        """Queued jobs of one tenant (kept incrementally -- O(1))."""
        return self._tenant_pending.get(tenant, 0)

    # -- the queue protocol --------------------------------------------------------

    def push(self, request: JobRequest, payload=None) -> None:
        raise NotImplementedError

    def pop(self, eligible=None) -> Optional[tuple]:
        """Remove and return ``(request, payload)`` for the policy's pick.

        Returns ``None`` when the queue is empty or no queued payload passes
        ``eligible``; skipped jobs keep their position.
        """
        raise NotImplementedError

    def remove(self, predicate=None) -> list:
        """Remove every ``(request, payload)`` whose *payload* matches.

        ``None`` removes everything.  Survivors keep their relative order, so
        policy tie-breaks are unchanged -- the contract ``cancel_queued``
        relies on.
        """
        raise NotImplementedError


class LinearPolicyQueue(PolicyQueue):
    """The compatibility queue: a list snapshot driven by ``policy.select``.

    O(n) per pick -- exactly the pre-indexed behaviour -- which makes it both
    the fallback for third-party policies that only implement ``select`` and
    the reference the conformance suite replays against the indexed queues.
    """

    def __init__(self, policy: SchedulingPolicy):
        super().__init__(policy)
        self._entries: list = []

    def push(self, request: JobRequest, payload=None) -> None:
        self._entries.append((request, payload))
        self._count(request, +1)

    def pop(self, eligible=None) -> Optional[tuple]:
        if eligible is None:
            candidates = list(enumerate(self._entries))
        else:
            candidates = [
                (index, entry)
                for index, entry in enumerate(self._entries)
                if eligible(entry[1])
            ]
        if not candidates:
            return None
        picked = self.policy.select([entry[0] for _, entry in candidates])
        index, entry = candidates[picked]
        del self._entries[index]
        self._count(entry[0], -1)
        return entry

    def remove(self, predicate=None) -> list:
        removed, kept = [], []
        for entry in self._entries:
            if predicate is None or predicate(entry[1]):
                removed.append(entry)
            else:
                kept.append(entry)
        self._entries = kept
        for request, _ in removed:
            self._count(request, -1)
        return removed


class FifoQueue(PolicyQueue):
    """Arrival order on a deque: O(1) push/pop on the hot path.

    Entries are kept sorted by ``seq``; consumers push in submission order so
    the append is O(1), and an out-of-order push (shuffled test traces)
    degrades gracefully to an ordered insert.  Cancelled entries are marked
    dead in place and skipped at pop time (lazy deletion).
    """

    def __init__(self, policy: SchedulingPolicy):
        super().__init__(policy)
        #: [request, payload, live] cells, ascending seq.
        self._entries: deque = deque()

    def push(self, request: JobRequest, payload=None) -> None:
        cell = [request, payload, True]
        if self._entries and self._entries[-1][0].seq > request.seq:
            tail = []
            while self._entries and self._entries[-1][0].seq > request.seq:
                tail.append(self._entries.pop())
            self._entries.append(cell)
            while tail:
                self._entries.append(tail.pop())
        else:
            self._entries.append(cell)
        self._count(request, +1)

    def pop(self, eligible=None) -> Optional[tuple]:
        skipped = []
        found = None
        while self._entries:
            cell = self._entries.popleft()
            if not cell[2]:
                continue
            if eligible is not None and not eligible(cell[1]):
                skipped.append(cell)
                continue
            found = cell
            break
        while skipped:
            self._entries.appendleft(skipped.pop())
        if found is None:
            return None
        self._count(found[0], -1)
        return found[0], found[1]

    def remove(self, predicate=None) -> list:
        removed = []
        for cell in self._entries:
            if cell[2] and (predicate is None or predicate(cell[1])):
                cell[2] = False
                removed.append((cell[0], cell[1]))
                self._count(cell[0], -1)
        if removed:
            self._entries = deque(cell for cell in self._entries if cell[2])
        return removed


class HeapPolicyQueue(PolicyQueue):
    """A lazy-deletion binary heap ordered by a per-request key.

    ``key_fn`` must end its tuple with ``request.seq`` so keys are unique
    (the heap never falls through to comparing payloads) and tie-breaks match
    the linear scans exactly.  Cancellation marks the cell dead; dead cells
    are discarded when they surface at the top.
    """

    def __init__(self, policy: SchedulingPolicy, key_fn):
        super().__init__(policy)
        self._key = key_fn
        self._heap: list = []

    def push(self, request: JobRequest, payload=None) -> None:
        heapq.heappush(self._heap, (self._key(request), [request, payload, True]))
        self._count(request, +1)

    def pop(self, eligible=None) -> Optional[tuple]:
        skipped = []
        found = None
        while self._heap:
            key, cell = heapq.heappop(self._heap)
            if not cell[2]:
                continue
            if eligible is not None and not eligible(cell[1]):
                skipped.append((key, cell))
                continue
            found = cell
            break
        for item in skipped:
            heapq.heappush(self._heap, item)
        if found is None:
            return None
        self._count(found[0], -1)
        return found[0], found[1]

    def remove(self, predicate=None) -> list:
        removed = []
        for _, cell in self._heap:
            if cell[2] and (predicate is None or predicate(cell[1])):
                cell[2] = False
                removed.append((cell[0], cell[1]))
                self._count(cell[0], -1)
        if removed and self._len * 2 < len(self._heap):
            # Mostly dead: compact so lazy deletion cannot leak unbounded.
            self._heap = [item for item in self._heap if item[1][2]]
            heapq.heapify(self._heap)
        return removed


class _TenantSubqueue:
    """One tenant's queued cells, indexed for both fair-share regimes.

    The fair rank of a queued job is ``(served[tenant] / weight, seq)``.
    Within one tenant ``served`` is common to every cell, so the tenant's
    best cell is order-invariant under service: while ``served == 0`` every
    share ties at zero and the minimum is the lowest ``seq``; once
    ``served > 0`` the minimum share belongs to the largest ``weight``
    (lowest ``seq`` among equals) *regardless of the value of served*.  Two
    heaps over the same cells -- one by ``seq``, one by ``(-weight, seq)`` --
    therefore stay valid forever; dead cells are skimmed lazily.
    """

    __slots__ = ("by_seq", "by_weight")

    def __init__(self):
        self.by_seq: list = []
        self.by_weight: list = []

    def push(self, cell) -> None:
        request = cell[0]
        heapq.heappush(self.by_seq, (request.seq, cell))
        heapq.heappush(self.by_weight, ((-request.weight, request.seq), cell))

    def best(self, served: float):
        """``(rank, cell, heap)`` of the tenant's live minimum, or ``None``."""
        heap = self.by_seq if served == 0.0 else self.by_weight
        while heap:
            _, cell = heap[0]
            if cell[2]:
                request = cell[0]
                share = served / max(request.weight, 1e-12)
                return (share, request.seq), cell, heap
            heapq.heappop(heap)
        return None


class FairShareQueue(PolicyQueue):
    """Weighted fair-share: per-tenant subqueues under a lazy tenant heap.

    A flat heap over all cells melts down at depth: every ``record_service``
    re-ranks the whole backlog of one tenant, and in round-robin steady state
    that backlog sits exactly at the heap top.  Instead each tenant keeps a
    :class:`_TenantSubqueue` whose internal order never changes, and a small
    cross-tenant heap ranks the per-tenant minima.  Cross-heap keys are
    *lower bounds* -- service only ever grows a tenant's share -- so a
    surfaced entry that still matches its tenant's current best is provably
    the global minimum; stale entries are re-pushed under their corrected
    (strictly larger) rank, which bounds the churn at one correction per
    service per tenant.
    """

    def __init__(self, policy: "WeightedFairSharePolicy"):
        super().__init__(policy)
        self._tenants: dict = {}
        #: Lazy heap of ``((share, seq), tenant)`` per-tenant best candidates.
        self._cross: list = []

    def _push_best(self, tenant: str) -> None:
        sub = self._tenants.get(tenant)
        best = sub.best(self.policy._served.get(tenant, 0.0)) if sub else None
        if best is not None:
            heapq.heappush(self._cross, (best[0], tenant))

    def push(self, request: JobRequest, payload=None) -> None:
        sub = self._tenants.get(request.tenant)
        if sub is None:
            sub = self._tenants[request.tenant] = _TenantSubqueue()
        served = self.policy._served.get(request.tenant, 0.0)
        prev = sub.best(served)
        sub.push([request, payload, True])
        self._count(request, +1)
        # Only a cell that *improves* the tenant's best gets a cross entry --
        # pushing the unchanged best again would pile same-rank duplicates
        # under the heap top (one per queued job) and melt the pop loop down
        # to a linear correction sweep per dispatch.
        rank = (served / max(request.weight, 1e-12), request.seq)
        if prev is None or rank < prev[0]:
            heapq.heappush(self._cross, (rank, request.tenant))

    def pop(self, eligible=None) -> Optional[tuple]:
        if eligible is not None:
            return self._pop_filtered(eligible)
        served = self.policy._served
        while self._cross:
            rank, tenant = self._cross[0]
            sub = self._tenants.get(tenant)
            best = sub.best(served.get(tenant, 0.0)) if sub else None
            if best is None:
                # No live cells left: drop the tenant (both heaps may still
                # hold dead cells -- clear them so payloads are released).
                heapq.heappop(self._cross)
                if sub is not None:
                    sub.by_seq.clear()
                    sub.by_weight.clear()
                    del self._tenants[tenant]
                continue
            if best[0] != rank:
                # Stale lower bound (the tenant was serviced, popped, or
                # pushed since): correct it and retry.
                heapq.heappop(self._cross)
                heapq.heappush(self._cross, (best[0], tenant))
                continue
            _, cell, heap = best
            heapq.heappop(heap)
            cell[2] = False  # the twin heap skims this cell lazily
            heapq.heappop(self._cross)
            self._push_best(tenant)
            self._count(cell[0], -1)
            return cell[0], cell[1]
        return None

    def _pop_filtered(self, eligible) -> Optional[tuple]:
        """Eligibility-restricted pick: exact linear scan over live cells.

        Only the async front-end's in-flight session gate uses predicates,
        on human-scale queues -- exactness over asymptotics here.
        """
        served = self.policy._served
        winner = None
        for tenant, sub in self._tenants.items():
            share_base = served.get(tenant, 0.0)
            for _, cell in sub.by_seq:
                if not cell[2] or not eligible(cell[1]):
                    continue
                request = cell[0]
                rank = (share_base / max(request.weight, 1e-12), request.seq)
                if winner is None or rank < winner[0]:
                    winner = (rank, cell)
        if winner is None:
            return None
        cell = winner[1]
        cell[2] = False
        self._count(cell[0], -1)
        return cell[0], cell[1]

    def remove(self, predicate=None) -> list:
        removed = []
        for sub in self._tenants.values():
            for _, cell in sub.by_seq:
                if cell[2] and (predicate is None or predicate(cell[1])):
                    cell[2] = False
                    removed.append((cell[0], cell[1]))
                    self._count(cell[0], -1)
        return removed


#: Registry of the policy zoo, keyed by CLI-facing name.
POLICIES = {
    policy.name: policy
    for policy in (FifoPolicy, PriorityPolicy, WeightedFairSharePolicy, ShortestJobFirstPolicy)
}

POLICY_NAMES = tuple(sorted(POLICIES))


def make_policy(policy) -> SchedulingPolicy:
    """Resolve a policy name / class / instance into a fresh-enough instance.

    Names and classes construct a new instance (so two schedulers never share
    fair-share state); an instance is passed through as-is for callers that
    want to pre-seed or share state deliberately.
    """
    if isinstance(policy, SchedulingPolicy):
        return policy
    if isinstance(policy, type) and issubclass(policy, SchedulingPolicy):
        return policy()
    try:
        return POLICIES[policy]()
    except (KeyError, TypeError):
        raise SchedulingError(
            f"unknown scheduling policy {policy!r}; known: {', '.join(POLICY_NAMES)}"
        ) from None


def choose_board(
    request: JobRequest,
    boards: Sequence[BoardView],
    prefer_affinity: bool = True,
) -> BoardView:
    """Pick the board for a selected job: warm affinity first, then rank.

    With ``prefer_affinity``, a board whose resident Shield belongs to the
    job's session wins (skipping the partial-reconfiguration load); otherwise
    -- and among several warm candidates -- the lowest rank (longest idle)
    wins, which rotates load across the fleet exactly like the seed's
    round-robin.
    """
    if not boards:
        raise SchedulingError("choose_board needs at least one available board")
    if prefer_affinity:
        warm = [b for b in boards if b.resident_session == request.session_id]
        if warm:
            return min(warm, key=lambda b: b.rank)
    return min(boards, key=lambda b: b.rank)


class BoardIndex:
    """Incrementally maintained free fleet + warm-affinity lookup.

    Both consumers used to rebuild a :class:`BoardView` list on every
    dispatch and hand it to :func:`choose_board` -- O(boards) per job even
    when nothing changed.  ``BoardIndex`` keeps the same semantics live:
    every board that becomes free gets a monotonically increasing *stamp*
    (its release order -- the old deque position / ``rank``), the free fleet
    is a min-stamp heap (longest idle first), and each session with warm
    residencies has its own min-stamp heap of candidate boards.

    Heaps are lazy: an entry is trusted only if the board is still free under
    the same stamp (and, for warm entries, still resident for that session),
    so ``evict`` and cross-session placement never have to search a heap.
    ``place`` is selection-identical to ``choose_board`` over the equivalent
    view list: warm minimum first when affinity is preferred, else the global
    minimum stamp.
    """

    def __init__(self, names: Sequence, resident: Optional[dict] = None):
        #: board name -> resident (warm) session; shared with the caller when
        #: one is passed, so ``evict``-style writes need no mirroring.
        self.resident = resident if resident is not None else {}
        self._next_stamp = 0
        self._free: dict = {}
        self._free_heap: list = []
        self._warm: dict = {}
        for name in names:
            self.resident.setdefault(name, None)
            self.release(name)

    def __len__(self) -> int:
        return len(self._free)

    @property
    def free_names(self) -> list:
        """Free boards in rank (release) order -- the old deque view."""
        return sorted(self._free, key=self._free.__getitem__)

    def add_board(self, name, resident=None) -> None:
        """Register a new (autoscaled-in) board and free it, coldest rank."""
        self.resident[name] = resident
        self.release(name)

    def release(self, name) -> None:
        """Return a board to the free pool at the back of the rotation."""
        stamp = self._next_stamp
        self._next_stamp += 1
        self._free[name] = stamp
        heapq.heappush(self._free_heap, (stamp, name))
        session = self.resident.get(name)
        if session is not None:
            heapq.heappush(self._warm.setdefault(session, []), (stamp, name))

    def set_resident(self, name, session) -> None:
        """Record the board's resident Shield (``None`` evicts)."""
        self.resident[name] = session
        if session is not None and name in self._free:
            heapq.heappush(
                self._warm.setdefault(session, []), (self._free[name], name)
            )

    def discard(self, name) -> None:
        """Drop a free (autoscaled-out) board from the pool entirely."""
        if self._free.pop(name, None) is None:
            raise SchedulingError(f"board {name!r} is not free, cannot discard")
        self.resident.pop(name, None)

    def place(self, session_id, prefer_affinity: bool = True):
        """Claim and return the board :func:`choose_board` would pick."""
        if prefer_affinity:
            heap = self._warm.get(session_id)
            while heap:
                stamp, name = heap[0]
                if (
                    self._free.get(name) == stamp
                    and self.resident.get(name) == session_id
                ):
                    heapq.heappop(heap)
                    if not heap:
                        del self._warm[session_id]
                    del self._free[name]
                    return name
                heapq.heappop(heap)
            if heap is not None and not heap:
                self._warm.pop(session_id, None)
        while self._free_heap:
            stamp, name = heapq.heappop(self._free_heap)
            if self._free.get(name) == stamp:
                del self._free[name]
                return name
        raise SchedulingError("place() needs at least one available board")
