"""Multi-tenant cloud serving layer for ShEF Shields.

The seed reproduction deploys one Shield for one Data Owner on one board.
This package scales that story to a serving fleet: a
:class:`~repro.cloud.service.ShieldCloudService` admits many concurrent
tenant sessions (each its own Data Owner, Load Key, and Shield), schedules
their accelerator jobs across boards with a deterministic FIFO
:class:`~repro.cloud.scheduler.FleetScheduler`, and keeps tenants isolated by
construction -- every byte crossing the untrusted host is ciphertext under a
session-scoped key.  The companion timing harness lives in
:mod:`repro.sim.cloud`.
"""

from repro.cloud.scheduler import AcceleratorJob, FleetScheduler, JobState
from repro.cloud.service import (
    BoardSlot,
    CloudServiceStats,
    HostObservation,
    ShieldCloudService,
)
from repro.cloud.tenant import SessionState, TenantSession, TenantUsage

__all__ = [
    "AcceleratorJob",
    "FleetScheduler",
    "JobState",
    "BoardSlot",
    "CloudServiceStats",
    "HostObservation",
    "ShieldCloudService",
    "SessionState",
    "TenantSession",
    "TenantUsage",
]
