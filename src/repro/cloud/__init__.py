"""Multi-tenant cloud serving layer for ShEF Shields.

The seed reproduction deploys one Shield for one Data Owner on one board.
This package scales that story to a serving fleet: a
:class:`~repro.cloud.service.ShieldCloudService` admits many concurrent
tenant sessions (each its own Data Owner, Load Key, and Shield), schedules
their accelerator jobs across boards with a policy-driven
:class:`~repro.cloud.scheduler.FleetScheduler` (FIFO, priority, weighted
fair-share, shortest-job-first -- the zoo lives in
:mod:`repro.cloud.policies` and is shared with the timed
:class:`~repro.sim.cloud.CloudSimulator`), keeps a session's Shield *warm* on
its board between jobs so repeated-tenant traffic skips the ~6.2 s reload,
and keeps tenants isolated by construction -- every byte crossing the
untrusted host is ciphertext under a session-scoped key.  The companion
timing harness lives in :mod:`repro.sim.cloud`.
"""

from repro.cloud.policies import (
    POLICIES,
    POLICY_NAMES,
    BoardView,
    FifoPolicy,
    JobRequest,
    PriorityPolicy,
    SchedulingPolicy,
    ShortestJobFirstPolicy,
    WeightedFairSharePolicy,
    choose_board,
    make_policy,
)
from repro.cloud.scheduler import AcceleratorJob, FleetScheduler, JobState
from repro.cloud.shard import (
    QueueDepthAutoscaler,
    ShardReplayReport,
    ShardRouter,
    partition_trace,
    replay_sharded,
)
from repro.cloud.service import (
    BoardSlot,
    CloudServiceStats,
    HostObservation,
    PlacedJob,
    ShieldCloudService,
)
from repro.cloud.tenant import SessionState, TenantSession, TenantUsage

__all__ = [
    "AcceleratorJob",
    "FleetScheduler",
    "JobState",
    "BoardSlot",
    "CloudServiceStats",
    "HostObservation",
    "PlacedJob",
    "ShieldCloudService",
    "SessionState",
    "TenantSession",
    "TenantUsage",
    "POLICIES",
    "POLICY_NAMES",
    "BoardView",
    "JobRequest",
    "SchedulingPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "WeightedFairSharePolicy",
    "ShortestJobFirstPolicy",
    "choose_board",
    "make_policy",
    "QueueDepthAutoscaler",
    "ShardReplayReport",
    "ShardRouter",
    "partition_trace",
    "replay_sharded",
]
