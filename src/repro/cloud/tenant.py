"""Tenant sessions: one Data Owner, one Load Key, one Shield per tenant.

A tenant session is the cloud-side unit of isolation.  Admitting a tenant
mints a fresh, session-scoped trust domain:

* a per-session Shield Encryption Key pair (in a real deployment the IP
  Vendor's key embedded in the tenant's bitstream; here derived
  deterministically from the session id),
* a :class:`~repro.attestation.data_owner.DataOwner` holding the tenant's
  Data Encryption Key, never shared with the service, and
* a wrapped Load Key that is the *only* key material the untrusted serving
  layer ever touches.

Because every session re-derives region sub-keys from its own Data Encryption
Key, two tenants running the *same* accelerator configuration on the *same*
board produce unrelated ciphertext: cross-tenant reads of DRAM or host logs
yield nothing, and unsealing with the wrong tenant's key fails its MAC check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.attestation.data_owner import DataOwner
from repro.attestation.messages import LoadKeyDelivery
from repro.core.config import ShieldConfig
from repro.core.shield import ShieldStats
from repro.crypto.rsa import RsaPrivateKey


class SessionState(enum.Enum):
    """Lifecycle of a tenant session (admit -> attest/provision -> run -> teardown)."""

    ADMITTED = "admitted"
    PROVISIONED = "provisioned"
    CLOSED = "closed"


@dataclass
class TenantUsage:
    """Per-tenant accounting, accumulated across every job the session ran.

    The counters mirror :class:`~repro.core.shield.ShieldStats` plus the host
    runtime's transfer totals; they are kept per session so the isolation
    tests can assert that one tenant's traffic never appears on another
    tenant's bill.
    """

    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0
    jobs_rejected: int = 0
    accel_bytes_read: int = 0
    accel_bytes_written: int = 0
    dram_bytes_read: int = 0
    dram_bytes_written: int = 0
    chunks_fetched: int = 0
    chunks_written_back: int = 0
    integrity_failures: int = 0
    bytes_uploaded: int = 0
    bytes_downloaded: int = 0

    def absorb_shield_stats(self, stats: ShieldStats) -> None:
        self.accel_bytes_read += stats.accel_bytes_read
        self.accel_bytes_written += stats.accel_bytes_written
        self.dram_bytes_read += stats.dram_bytes_read
        self.dram_bytes_written += stats.dram_bytes_written
        self.chunks_fetched += stats.chunks_fetched
        self.chunks_written_back += stats.chunks_written_back
        self.integrity_failures += stats.integrity_failures


@dataclass
class TenantSession:
    """One admitted tenant: identity, key material, config, and accounting.

    ``load_key`` always wraps the session's *current* Data Encryption Key.
    The service rotates that key at every job load (fresh key, fresh wrap),
    because region sub-keys and chunk IVs restart with each Shield load:
    without rotation, two jobs sealing different inputs for the same region
    would reuse AES-CTR keystream, handing the untrusted host the XOR of two
    plaintexts.
    """

    session_id: str
    tenant: str
    accelerator: object
    shield_config: ShieldConfig
    data_owner: DataOwner
    shield_private_key: RsaPrivateKey
    load_key: LoadKeyDelivery
    state: SessionState = SessionState.ADMITTED
    #: Fair-share weight under the ``fair`` scheduling policy (> 0).
    weight: float = 1.0
    usage: TenantUsage = field(default_factory=TenantUsage)
    #: Shield statistics captured after each job (most recent last).
    job_stats: list = field(default_factory=list)
    #: Boards this session's Shield has been loaded onto, in order.
    boards_used: list = field(default_factory=list)

    def __repr__(self) -> str:  # Sessions hold key material; print identity only.
        return (
            f"TenantSession(session_id={self.session_id!r}, tenant={self.tenant!r}, "
            f"state={self.state.name}, weight={self.weight})"
        )

    @property
    def shield_id(self) -> str:
        return self.shield_config.shield_id

    @property
    def is_provisioned(self) -> bool:
        return self.state is SessionState.PROVISIONED

    @property
    def is_closed(self) -> bool:
        return self.state is SessionState.CLOSED
