"""The multi-tenant Shield serving layer.

:class:`ShieldCloudService` plays the CSP: it owns a fleet of FPGA boards and
admits many concurrent tenant sessions, each with its own Data Owner, Load
Key, and Shield configuration.  Jobs are queued through a deterministic FIFO
scheduler and executed by time-multiplexing Shields onto free boards:

1. **admit** -- the tenant picks an accelerator; the service mints a
   session-scoped Shield key pair and the tenant wraps a fresh Data
   Encryption Key against it (the Load Key).
2. **load** -- when a job is placed, the session's Shield is instantiated on
   the assigned board and the untrusted host runtime forwards the Load Key.
3. **run** -- inputs are sealed *by the tenant's Data Owner*, DMA-ed in as
   ciphertext, the accelerator executes behind the Shield, and outputs come
   back sealed; the service then unseals them on the tenant's behalf with the
   tenant's own key ring (never a shared key).
4. **teardown** -- the Shield is torn off the board (on-chip allocations
   freed, register port disconnected) so the next tenant gets a clean slate.

Isolation is structural, not policed: every byte that crosses the host is
ciphertext under a per-session key, so even a malicious
:class:`~repro.host.runtime.ShefHostRuntime` or a board-sharing neighbour
observes nothing.  :meth:`ShieldCloudService.plaintext_exposures` lets tests
and demos audit the service-wide host ledger for leaks, and
:meth:`job_result` refuses to hand one tenant another tenant's outputs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace

from repro.accelerators.base import ShieldMemoryAdapter
from repro.attestation.data_owner import DataOwner
from repro.cloud.scheduler import AcceleratorJob, FleetScheduler
from repro.cloud.tenant import SessionState, TenantSession
from repro.core.config import ShieldConfig
from repro.core.shield import Shield
from repro.crypto.rsa import RsaPrivateKey
from repro.errors import CloudError, SchedulingError, TenantIsolationError
from repro.host.runtime import ShefHostRuntime
from repro.hw.board import BoardModel, FpgaBoard, make_board


@dataclass
class BoardSlot:
    """One board of the fleet plus its serving-side bookkeeping."""

    name: str
    board: FpgaBoard
    shield_loads: int = 0
    #: Session currently loaded on the board (None between jobs).
    active_session: str | None = None


@dataclass
class HostObservation:
    """One entry of the service-wide host ledger: who moved which blob."""

    session_id: str
    board_name: str
    entry: tuple


@dataclass
class CloudServiceStats:
    """Service-wide counters (the CSP's dashboard)."""

    sessions_admitted: int = 0
    sessions_closed: int = 0
    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    shield_loads: int = 0


class ShieldCloudService:
    """Hosts a board fleet and serves many tenant sessions concurrently."""

    def __init__(
        self,
        num_boards: int = 2,
        board_model: BoardModel | str = BoardModel.AWS_F1,
        fast_crypto: bool | None = None,
        serial_prefix: str = "cloud-fpga",
        ledger_limit: int | None = None,
    ):
        """``ledger_limit`` bounds the host-observation ledger (oldest entries
        are evicted first).  The default keeps everything, which is what the
        isolation tests and demos want -- the ledger stores every DMA'd blob
        verbatim, so a long-lived service should set a limit and audit
        incrementally."""
        if num_boards < 1:
            raise CloudError("the fleet needs at least one board")
        if ledger_limit is not None and ledger_limit < 1:
            raise CloudError("ledger_limit must be positive (or None for unbounded)")
        self.fast_crypto = fast_crypto
        self.ledger_limit = ledger_limit
        self.slots: dict[str, BoardSlot] = {}
        for index in range(num_boards):
            name = f"board-{index}"
            board = make_board(board_model, serial=f"{serial_prefix}-{index:04d}")
            slot = BoardSlot(name=name, board=board)
            # The service audits its own boards: every DMA transfer (the only
            # way bulk data crosses the host boundary) is recorded verbatim
            # into the ledger, attributed to whichever session holds the
            # board.  This is what makes :meth:`plaintext_exposures` a real
            # check -- a regression that DMA'd plaintext would land here.
            board.shell.install_dma_tap(self._make_dma_tap(slot))
            self.slots[name] = slot
        self.scheduler = FleetScheduler(list(self.slots))
        self.sessions: dict[str, TenantSession] = {}
        self.jobs: dict[str, AcceleratorJob] = {}
        self.stats = CloudServiceStats()
        self._host_ledger: deque = deque(maxlen=ledger_limit)
        self._session_counter = 0
        self._job_counter = 0

    def _make_dma_tap(self, slot: BoardSlot):
        def tap(direction: str, address: int, data: bytes) -> None:
            self._host_ledger.append(
                HostObservation(
                    session_id=slot.active_session or "<idle>",
                    board_name=slot.name,
                    entry=(f"dma-{direction}", address, data),
                )
            )

        return tap

    # -- tenant lifecycle ---------------------------------------------------------

    def admit_tenant(
        self,
        tenant: str,
        accelerator,
        shield_config: ShieldConfig | None = None,
    ) -> TenantSession:
        """Admit a tenant and provision a session-scoped trust domain.

        This compresses the paper's Figure 2 ceremony to its key-material
        essentials: a per-session Shield Encryption Key pair stands in for the
        attested bitstream, and the returned session already holds the wrapped
        Load Key that the host runtime will forward at first load.
        """
        self._session_counter += 1
        session_id = f"sess-{self._session_counter:04d}"
        base_config = shield_config or accelerator.build_shield_config()
        config = self._session_config(base_config, session_id)
        config.validate()

        # Session-scoped keys: deterministic per session id so runs replay.
        private_key = RsaPrivateKey.from_seed(
            b"cloud-shield:" + session_id.encode("utf-8"), bits=1024
        )
        data_owner = DataOwner(name=tenant, seed=9000 + self._session_counter)
        data_owner.generate_data_key(config.shield_id)
        load_key = data_owner.wrap_load_key(
            private_key.public_key.encode(), config.shield_id
        )

        session = TenantSession(
            session_id=session_id,
            tenant=tenant,
            accelerator=accelerator,
            shield_config=config,
            data_owner=data_owner,
            shield_private_key=private_key,
            load_key=load_key,
            state=SessionState.ADMITTED,
        )
        self.sessions[session_id] = session
        self.stats.sessions_admitted += 1
        # Attestation is compressed to its key-material essentials (the
        # wrapped Load Key above), so admission completes provisioning
        # immediately; a fuller ceremony would hold the session in ADMITTED
        # until the attestation transcript verifies.
        session.state = SessionState.PROVISIONED
        return session

    def _session_config(self, base: ShieldConfig, session_id: str) -> ShieldConfig:
        """Clone a Shield configuration into a session-unique namespace."""
        config = ShieldConfig.from_dict(base.to_dict())
        config.shield_id = f"{base.shield_id}:{session_id}"
        if self.fast_crypto is not None:
            config.engine_sets = [
                replace(engine_set, fast_crypto=self.fast_crypto)
                for engine_set in config.engine_sets
            ]
        return config

    def close_session(self, session_id: str) -> list:
        """Tear a session down; still-queued jobs are dropped and reported.

        Idempotent: closing an already-closed session is a no-op.
        """
        session = self._session(session_id)
        if session.is_closed:
            return []
        session.state = SessionState.CLOSED
        self.stats.sessions_closed += 1
        dropped = self.scheduler.drop_session_jobs(session_id)
        # Dropped jobs count as failures so submitted == completed + failed
        # holds on both the tenant's bill and the fleet dashboard.
        session.usage.jobs_failed += len(dropped)
        self.stats.jobs_failed += len(dropped)
        return dropped

    def _session(self, session_id: str) -> TenantSession:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise CloudError(f"no session named {session_id!r}") from None

    # -- job submission and execution ---------------------------------------------

    def submit_job(
        self,
        session_id: str,
        inputs: dict | None = None,
        output_regions: dict | None = None,
        **params,
    ) -> AcceleratorJob:
        """Queue one accelerator run for a provisioned session."""
        session = self._session(session_id)
        if not session.is_provisioned:
            raise SchedulingError(
                f"session {session_id!r} is {session.state.value}; only "
                "provisioned sessions may submit jobs"
            )
        self._job_counter += 1
        job = AcceleratorJob(
            job_id=f"job-{self._job_counter:04d}",
            session_id=session_id,
            inputs=dict(inputs or {}),
            output_regions=dict(output_regions or {}),
            params=dict(params),
        )
        self.jobs[job.job_id] = job
        self.scheduler.submit(job)
        self.stats.jobs_submitted += 1
        return job

    def run_next_job(self) -> AcceleratorJob | None:
        """Place and execute the next queued job; ``None`` if nothing runnable."""
        placement = self.scheduler.acquire()
        if placement is None:
            return None
        job, board_name = placement
        slot = self.slots[board_name]
        try:
            # The session lookup itself can fail (a dangling session id), and
            # that failure must release the board too -- otherwise the job is
            # stuck RUNNING and the slot leaks out of the free pool forever.
            session = self._session(job.session_id)
            self._execute(job, slot, session)
        except Exception as exc:  # noqa: BLE001 - job failures must free the board
            self.scheduler.release(job, completed=False, error=str(exc))
            self.stats.jobs_failed += 1
            session = self.sessions.get(job.session_id)
            if session is not None:
                session.usage.jobs_failed += 1
        else:
            self.scheduler.release(job, completed=True)
            session.usage.jobs_completed += 1
            self.stats.jobs_completed += 1
        return job

    def run_until_idle(self) -> list:
        """Drain the queue; returns the jobs in completion order."""
        finished = []
        while True:
            job = self.run_next_job()
            if job is None:
                break
            finished.append(job)
        return finished

    def _execute(self, job: AcceleratorJob, slot: BoardSlot, session: TenantSession) -> None:
        board = slot.board
        config = session.shield_config
        allocations_before = set(board.on_chip_memory.allocation_names())
        shield = Shield(config, board.shell, board.on_chip_memory, session.shield_private_key)
        runtime = ShefHostRuntime(board.shell, config, label=session.session_id)
        slot.shield_loads += 1
        self.stats.shield_loads += 1
        slot.active_session = session.session_id
        session.boards_used.append(slot.name)
        try:
            # Rotate the session's Data Encryption Key for this job: region
            # sub-keys and chunk IVs restart with every Shield load, so a
            # reused key would reuse AES-CTR keystream across jobs (letting
            # the host XOR two observed ciphertexts into plaintext-XOR) and
            # allow cross-job ciphertext replay with valid MACs.
            session.data_owner.generate_data_key(config.shield_id)
            session.load_key = session.data_owner.wrap_load_key(
                session.shield_private_key.public_key.encode(), config.shield_id
            )
            runtime.deliver_load_key(shield, session.load_key)

            # Stage sealed inputs through the untrusted host (ciphertext only).
            for region_name, plaintext in job.inputs.items():
                staged = session.data_owner.seal_input(
                    config, region_name, plaintext, shield_id=config.shield_id
                )
                runtime.upload_region(staged)

            result = session.accelerator.run(ShieldMemoryAdapter(shield), **job.params)
            shield.flush()

            # Download requested output regions (still sealed) and unseal them
            # with the tenant's own key ring.  Each spec is either a plaintext
            # length (from chunk 0) or an ``(offset_chunks, length)`` pair for
            # a partial download starting mid-region.
            for region_name, spec in job.output_regions.items():
                if isinstance(spec, (tuple, list)):
                    offset_chunks, length = spec
                else:
                    offset_chunks, length = 0, spec
                job.region_outputs[region_name] = self._download_output(
                    session, shield, runtime, region_name, length, offset_chunks
                )
            # Only a fully successful job (run AND downloads) publishes its
            # result: ``job.result is None`` is the failure signal consumers
            # rely on.
            job.result = result

            stats = shield.stats()
            session.job_stats.append(stats)
            session.usage.absorb_shield_stats(stats)
        finally:
            session.usage.bytes_uploaded += runtime.log.bytes_uploaded
            session.usage.bytes_downloaded += runtime.log.bytes_downloaded
            # The runtime's log label carries the session attribution into the
            # shared audit trail.
            for entry in runtime.log.observed_blobs:
                self._host_ledger.append(
                    HostObservation(
                        session_id=runtime.log.label, board_name=slot.name, entry=entry
                    )
                )
            self._unload(slot, allocations_before)
            slot.active_session = None

    def _download_output(
        self,
        session: TenantSession,
        shield: Shield,
        runtime: ShefHostRuntime,
        region_name: str,
        length: int | None,
        offset_chunks: int = 0,
    ) -> bytes:
        config = session.shield_config
        region = config.region(region_name)
        if not 0 <= offset_chunks < region.num_chunks:
            raise CloudError(
                f"offset {offset_chunks} outside region {region_name!r} "
                f"({region.num_chunks} chunks)"
            )
        if length is None:
            num_chunks = region.num_chunks - offset_chunks
        else:
            num_chunks = -(-length // region.chunk_size)
        if offset_chunks + num_chunks > region.num_chunks:
            raise CloudError(
                f"download of {num_chunks} chunk(s) at offset {offset_chunks} "
                f"runs past region {region_name!r} ({region.num_chunks} chunks)"
            )
        ciphertext, tags = runtime.download_region(region_name, num_chunks, offset_chunks)
        sealed = DataOwner.sealed_chunks_from_device(
            config, region_name, ciphertext, tags, offset_chunks
        )
        if region.replay_protected:
            counters = shield.pipeline(region_name).counters
            versions = [counters.read(c.chunk_index) for c in sealed]
            return session.data_owner.unseal_output_with_versions(
                config, region_name, sealed, versions, length, shield_id=config.shield_id
            )
        return session.data_owner.unseal_output(
            config, region_name, sealed, length, shield_id=config.shield_id
        )

    def _unload(self, slot: BoardSlot, allocations_before: set) -> None:
        """Tear the Shield off the board: free on-chip memory, drop the port."""
        on_chip = slot.board.on_chip_memory
        for name in on_chip.allocation_names():
            if name not in allocations_before:
                on_chip.free(name)
        slot.board.shell.disconnect_user_logic()

    # -- results and auditing -------------------------------------------------------

    def job_result(self, job_id: str, tenant: str) -> AcceleratorJob:
        """Fetch a finished job, enforcing that the caller owns it."""
        try:
            job = self.jobs[job_id]
        except KeyError:
            raise CloudError(f"no job named {job_id!r}") from None
        session = self._session(job.session_id)
        if session.tenant != tenant:
            raise TenantIsolationError(
                f"tenant {tenant!r} may not read results of {session.tenant!r}"
            )
        return job

    def host_observations(self) -> list:
        """The service-wide host ledger (everything the untrusted host saw)."""
        return list(self._host_ledger)

    def plaintext_exposures(self, plaintext: bytes, window: int = 16) -> list:
        """Audit the host ledger for fragments of a tenant plaintext.

        Probes are ``window``-byte slices of ``plaintext`` taken every
        ``window`` bytes (plus the tail), so any contiguous leak of at least
        ``2 * window - 1`` plaintext bytes is guaranteed to contain a whole
        probe.  The ledger includes the verbatim bytes of every DMA transfer
        on every fleet board, so an empty result really means the host moved
        no recognizable plaintext -- only ciphertext and wrapped keys.
        """
        if not plaintext:
            probes = set()
        elif len(plaintext) <= window:
            probes = {plaintext}
        else:
            probes = {
                plaintext[offset : offset + window]
                for offset in range(0, len(plaintext) - window + 1, window)
            }
            probes.add(plaintext[-window:])
        exposures = []
        for observation in self._host_ledger:
            for item in observation.entry:
                if isinstance(item, (bytes, bytearray)):
                    blob = bytes(item)
                    if any(probe in blob for probe in probes):
                        exposures.append(observation)
                        break
        return exposures

    # -- reporting -------------------------------------------------------------------

    def fleet_summary(self) -> dict:
        """Board-by-board load counts plus service totals (for demos/CLI)."""
        return {
            "boards": {
                name: {
                    "shield_loads": slot.shield_loads,
                    "sessions": list(self.scheduler.placement_history[name]),
                }
                for name, slot in self.slots.items()
            },
            "sessions_admitted": self.stats.sessions_admitted,
            "jobs_completed": self.stats.jobs_completed,
            "jobs_failed": self.stats.jobs_failed,
        }
