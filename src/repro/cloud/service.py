"""The multi-tenant Shield serving layer.

:class:`ShieldCloudService` plays the CSP: it owns a fleet of FPGA boards and
admits many concurrent tenant sessions, each with its own Data Owner, Load
Key, and Shield configuration.  Jobs are queued through a deterministic
policy-driven scheduler (FIFO / priority / weighted fair-share /
shortest-job-first -- the same :mod:`repro.cloud.policies` core that drives
the timed :class:`~repro.sim.cloud.CloudSimulator`) and executed by
time-multiplexing Shields onto free boards:

1. **admit** -- the tenant picks an accelerator; the service mints a
   session-scoped Shield key pair and the tenant wraps a fresh Data
   Encryption Key against it (the Load Key).
2. **load** -- when a job is placed, the session's Shield is instantiated on
   the assigned board and the untrusted host runtime forwards the Load Key.
3. **run** -- inputs are sealed *by the tenant's Data Owner*, DMA-ed in as
   ciphertext, the accelerator executes behind the Shield, and outputs come
   back sealed; the service then unseals them on the tenant's behalf with the
   tenant's own key ring (never a shared key).
4. **teardown** -- with warm-board affinity (the default) a successful job
   leaves its session's Shield *resident* on the board, so the next job of
   the same session skips the teardown+reload (the paper's ~6.2 s partial
   reconfiguration) entirely -- the datapath is still re-keyed per job.  A
   different session landing on the board, a job failure, a closed session,
   or ``affinity=False`` evicts the Shield first (on-chip allocations freed,
   register port disconnected) so the next tenant gets a clean slate.

Isolation is structural, not policed: every byte that crosses the host is
ciphertext under a per-session key, so even a malicious
:class:`~repro.host.runtime.ShefHostRuntime` or a board-sharing neighbour
observes nothing.  :meth:`ShieldCloudService.plaintext_exposures` lets tests
and demos audit the service-wide host ledger for leaks, and
:meth:`job_result` refuses to hand one tenant another tenant's outputs.

Every job also leaves a full lifecycle trail on the observability stream
(:mod:`repro.obs`): per-stage spans (``queue``/``place``/``shield_load``/
``input_seal``/``execute``/``download``/``output_unseal``), a queue-depth
gauge, and security events (DMA-tap observations, MAC failures, warm-Shield
evictions, attack detections).  All service counters -- ``stats``, the
per-board numbers in :meth:`fleet_summary`, and :class:`BoardSlot`'s
load/hit/eviction counts -- are *views over the metrics registry*, so the
dashboard can never drift from the event stream.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, replace

import repro.obs as obs_api
from repro.analysis.annotations import executor_side, loop_owned
from repro.accelerators.base import ShieldMemoryAdapter
from repro.attestation.data_owner import DataOwner
from repro.cloud.scheduler import (
    DEFAULT_HISTORY_LIMIT,
    AcceleratorJob,
    FleetScheduler,
    JobState,
)
from repro.cloud.tenant import SessionState, TenantSession
from repro.core.config import ShieldConfig
from repro.core.shield import Shield
from repro.crypto.rsa import RsaPrivateKey
from repro.errors import (
    AdmissionError,
    CloudError,
    IntegrityError,
    SchedulingError,
    TenantIsolationError,
)
from repro.host.runtime import ShefHostRuntime
from repro.hw.board import BoardModel, FpgaBoard, make_board
from repro.obs.metrics import MetricsRegistry


class BoardSlot:
    """One board of the fleet plus its serving-side bookkeeping.

    The load/hit/eviction counts are read-only views over the service's
    metrics registry (labelled by board), so the per-board numbers shown in
    :meth:`ShieldCloudService.fleet_summary` and the per-event trace stream
    share one source of truth.
    """

    def __init__(self, name: str, board: FpgaBoard, metrics: MetricsRegistry):
        self.name = name
        self.board = board
        self._metrics = metrics
        #: Session currently loaded on the board (None between jobs).
        self.active_session: str | None = None
        #: The warm Shield left resident between jobs (affinity), if any.
        self.shield: Shield | None = None
        #: Session the resident Shield belongs to.
        self.resident_session: str | None = None

    @property
    def shield_loads(self) -> int:
        return int(self._metrics.counter("cloud.shield_loads", board=self.name).value)

    @property
    def affinity_hits(self) -> int:
        return int(self._metrics.counter("cloud.affinity_hits", board=self.name).value)

    @property
    def evictions(self) -> int:
        return int(self._metrics.counter("cloud.evictions", board=self.name).value)


@dataclass
class HostObservation:
    """One entry of the service-wide host ledger: who moved which blob."""

    session_id: str
    board_name: str
    entry: tuple


@dataclass
class PlacedJob:
    """A job acquired from the scheduler and attributed, but not yet executed.

    The handle :meth:`ShieldCloudService.begin_next_job` returns and
    :meth:`ShieldCloudService.execute_placed` / :meth:`finish_placed`
    consume.  The synchronous :meth:`run_next_job` drives all three inline;
    the async front-end (:mod:`repro.serve`) runs ``execute_placed`` on an
    executor thread while ``begin``/``finish`` stay on the event loop, so the
    scheduler and the job maps are only ever mutated from one thread.
    """

    job: AcceleratorJob
    slot: BoardSlot
    warm: bool
    #: Tracer timestamp the job entered the queue (feeds the ``job`` span).
    queue_start: float


class CloudServiceStats:
    """Service-wide counters (the CSP's dashboard).

    A read-only view over the metrics registry: each attribute sums the
    matching counter across every label set, so these totals, the per-board
    numbers, and the Prometheus dump can never disagree.
    """

    _FIELDS = (
        "sessions_admitted",
        "sessions_closed",
        "jobs_submitted",
        "jobs_completed",
        "jobs_failed",
        "jobs_cancelled",
        "jobs_rejected",
        "jobs_ratelimited",
        "jobs_shed",
        "jobs_retired",
        "shield_loads",
        "affinity_hits",
        "evictions",
    )

    def __init__(self, metrics: MetricsRegistry):
        self._metrics = metrics

    def __getattr__(self, name: str) -> int:
        if name in CloudServiceStats._FIELDS:
            return int(self._metrics.counter_total(f"cloud.{name}"))
        raise AttributeError(name)

    def __repr__(self) -> str:
        body = ", ".join(f"{name}={getattr(self, name)}" for name in self._FIELDS)
        return f"CloudServiceStats({body})"


class ShieldCloudService:
    """Hosts a board fleet and serves many tenant sessions concurrently."""

    def __init__(
        self,
        num_boards: int = 2,
        board_model: BoardModel | str = BoardModel.AWS_F1,
        fast_crypto: bool | None = None,
        serial_prefix: str = "cloud-fpga",
        ledger_limit: int | None = None,
        policy="fifo",
        affinity: bool = True,
        queue_cap: int | None = None,
        tenant_quota: int | None = None,
        history_limit: int | None = None,
        job_retention: int | None = 1024,
        obs=None,
    ):
        """``ledger_limit`` bounds the host-observation ledger (oldest entries
        are evicted first).  The default keeps everything, which is what the
        isolation tests and demos want -- the ledger stores every DMA'd blob
        verbatim, so a long-lived service should set a limit and audit
        incrementally.

        ``policy`` names a :mod:`~repro.cloud.policies` scheduling policy
        (``fifo``/``priority``/``fair``/``sjf``); ``affinity`` keeps a
        session's Shield warm on its board between jobs so repeated-tenant
        traffic skips the teardown+reload; ``queue_cap``/``tenant_quota``
        bound the pending queue fleet-wide and per tenant (violations come
        back as ``JobState.REJECTED``); ``history_limit`` caps each board's
        placement-history ring (None uses the scheduler default).

        ``job_retention`` bounds how many *terminal* jobs (COMPLETED /
        FAILED / CANCELLED / REJECTED) stay reachable through
        :meth:`job_result` -- the most recent ones, ring-buffered, so a
        long-lived service never accumulates every job it ever ran.  ``None``
        keeps everything (the replay-harness behaviour).  Exact lifetime
        totals always live in the metrics registry (``stats``), mirroring how
        ``placement_totals`` outlives the placement-history ring.

        ``obs`` is the :class:`~repro.obs.Observability` handle to record
        into; the default snapshots :func:`repro.obs.current` at construction
        time.  The service always keeps a *real* metrics registry for its own
        counters (``stats`` / ``fleet_summary`` are views over it); a null
        ``obs`` only disables the span/security event stream.
        """
        if num_boards < 1:
            raise CloudError("the fleet needs at least one board")
        if ledger_limit is not None and ledger_limit < 1:
            raise CloudError("ledger_limit must be positive (or None for unbounded)")
        if job_retention is not None and job_retention < 1:
            raise CloudError("job_retention must be positive (or None for unbounded)")
        self.obs = obs if obs is not None else obs_api.current()
        # stats/fleet_summary derive from the registry, so the service needs a
        # recording one even when observability is off for the process.
        self.metrics = (
            self.obs.metrics if self.obs.metrics.enabled else MetricsRegistry()
        )
        self.tracer = self.obs.tracer
        # Stage metrics need real durations even when tracing is off (the
        # null tracer's clock is frozen at 0.0), so fall back to the wall
        # clock for the service's internal timestamps in that case.
        self._now = self.tracer.now if self.tracer.enabled else time.perf_counter
        self.fast_crypto = fast_crypto
        self.ledger_limit = ledger_limit
        self.affinity = bool(affinity)
        self.slots: dict[str, BoardSlot] = {}
        for index in range(num_boards):
            name = f"board-{index}"
            board = make_board(board_model, serial=f"{serial_prefix}-{index:04d}")
            slot = BoardSlot(name=name, board=board, metrics=self.metrics)
            # The service audits its own boards: every DMA transfer (the only
            # way bulk data crosses the host boundary) is recorded verbatim
            # into the ledger, attributed to whichever session holds the
            # board.  This is what makes :meth:`plaintext_exposures` a real
            # check -- a regression that DMA'd plaintext would land here.
            board.shell.install_dma_tap(self._make_dma_tap(slot))
            self.slots[name] = slot
        self.scheduler = FleetScheduler(
            list(self.slots),
            policy=policy,
            affinity=self.affinity,
            queue_cap=queue_cap,
            tenant_quota=tenant_quota,
            history_limit=DEFAULT_HISTORY_LIMIT if history_limit is None else history_limit,
            metrics=self.metrics,
        )
        self.sessions: dict[str, TenantSession] = {}
        #: Live jobs only (QUEUED / RUNNING); terminal jobs move to the
        #: bounded retention ring so this map cannot grow with traffic.
        self.jobs: dict[str, AcceleratorJob] = {}
        self.job_retention = job_retention
        #: Most recent terminal jobs, oldest first (the retention ring).
        self._terminal_jobs: OrderedDict = OrderedDict()
        self.stats = CloudServiceStats(self.metrics)
        self._host_ledger: deque = deque(maxlen=ledger_limit)
        self._session_counter = 0
        self._job_counter = 0
        #: job id -> tracer timestamp at submission (feeds the ``queue`` span).
        self._submit_ts: dict = {}

    def now(self) -> float:
        """The service's stage clock: tracer time, or wall clock when tracing
        is off.  Public so the async front-end stamps its spans (``enqueue``,
        ``executor_handoff``) on the same timeline as the lifecycle spans."""
        return self._now()

    def _count(self, name: str, amount: int = 1, **labels) -> None:
        self.metrics.counter(f"cloud.{name}", **labels).inc(amount)

    def _retire_job(self, job: AcceleratorJob) -> None:
        """Move a terminal job from the live map into the retention ring.

        The ring keeps the ``job_retention`` most recent terminal jobs
        reachable through :meth:`job_result`; older ones are dropped (counted
        by the ``jobs_retired`` lifetime total).  Exact per-state lifetime
        counts are never lost -- they live in the metrics registry.
        """
        self.jobs.pop(job.job_id, None)
        self._terminal_jobs[job.job_id] = job
        self._terminal_jobs.move_to_end(job.job_id)
        if self.job_retention is not None:
            while len(self._terminal_jobs) > self.job_retention:
                self._terminal_jobs.popitem(last=False)
                self._count("jobs_retired")

    @property
    def terminal_jobs(self) -> list:
        """The retained terminal jobs, oldest first (a bounded recent tail)."""
        return list(self._terminal_jobs.values())

    def _observe_stage(self, stage: str, seconds: float) -> None:
        self.metrics.histogram("cloud.stage_seconds", stage=stage).observe(seconds)

    def _make_dma_tap(self, slot: BoardSlot):
        def tap(direction: str, address: int, data: bytes) -> None:
            self._host_ledger.append(
                HostObservation(
                    session_id=slot.active_session or "<idle>",
                    board_name=slot.name,
                    entry=(f"dma-{direction}", address, data),
                )
            )
            if self.tracer.enabled:
                session = self.sessions.get(slot.active_session or "")
                self.tracer.security(
                    "dma_tap",
                    tenant=session.tenant if session is not None else None,
                    session=slot.active_session,
                    board=slot.name,
                    direction=direction,
                    address=address,
                    bytes=len(data),
                )

        return tap

    # -- tenant lifecycle ---------------------------------------------------------

    def admit_tenant(
        self,
        tenant: str,
        accelerator,
        shield_config: ShieldConfig | None = None,
        weight: float = 1.0,
    ) -> TenantSession:
        """Admit a tenant and provision a session-scoped trust domain.

        This compresses the paper's Figure 2 ceremony to its key-material
        essentials: a per-session Shield Encryption Key pair stands in for the
        attested bitstream, and the returned session already holds the wrapped
        Load Key that the host runtime will forward at first load.

        ``weight`` is the tenant's fair-share weight: under the ``fair``
        scheduling policy a weight-2 tenant is served twice the share of a
        weight-1 tenant.
        """
        if weight <= 0:
            raise CloudError("a tenant's fair-share weight must be positive")
        admit_start = self._now()
        self._session_counter += 1
        session_id = f"sess-{self._session_counter:04d}"
        base_config = shield_config or accelerator.build_shield_config()
        config = self._session_config(base_config, session_id)
        config.validate()

        # Session-scoped keys: deterministic per session id so runs replay.
        private_key = RsaPrivateKey.from_seed(
            b"cloud-shield:" + session_id.encode("utf-8"), bits=1024
        )
        data_owner = DataOwner(name=tenant, seed=9000 + self._session_counter)
        data_owner.generate_data_key(config.shield_id)
        load_key = data_owner.wrap_load_key(
            private_key.public_key.encode(), config.shield_id
        )

        session = TenantSession(
            session_id=session_id,
            tenant=tenant,
            accelerator=accelerator,
            shield_config=config,
            data_owner=data_owner,
            shield_private_key=private_key,
            load_key=load_key,
            state=SessionState.ADMITTED,
            weight=weight,
        )
        self.sessions[session_id] = session
        self._count("sessions_admitted")
        # Attestation is compressed to its key-material essentials (the
        # wrapped Load Key above), so admission completes provisioning
        # immediately; a fuller ceremony would hold the session in ADMITTED
        # until the attestation transcript verifies.
        session.state = SessionState.PROVISIONED
        self.tracer.record_span(
            "admit",
            admit_start,
            self._now() - admit_start,
            tenant=tenant,
            session=session_id,
        )
        return session

    def _session_config(self, base: ShieldConfig, session_id: str) -> ShieldConfig:
        """Clone a Shield configuration into a session-unique namespace."""
        config = ShieldConfig.from_dict(base.to_dict())
        config.shield_id = f"{base.shield_id}:{session_id}"
        if self.fast_crypto is not None:
            config.engine_sets = [
                replace(engine_set, fast_crypto=self.fast_crypto)
                for engine_set in config.engine_sets
            ]
        return config

    @loop_owned
    def close_session(self, session_id: str) -> list:
        """Tear a session down: cancel its queued jobs, free its warm Shields.

        Still-queued jobs move to ``JobState.CANCELLED`` (they never ran, so
        they are not failures), and any board still holding the session's
        warm Shield is evicted so the next tenant gets a clean slate -- and
        the tenant's key material stops being resident on hardware it no
        longer pays for.  Idempotent: closing an already-closed session is a
        no-op.
        """
        session = self._session(session_id)
        if session.is_closed:
            return []
        session.state = SessionState.CLOSED
        self._count("sessions_closed")
        cancelled = self.scheduler.cancel_session_jobs(session_id)
        self._account_cancelled(cancelled)
        self.tracer.mark(
            "session_closed",
            tenant=session.tenant,
            session=session_id,
            cancelled_jobs=len(cancelled),
        )
        for board_name in self.scheduler.boards_resident_for(session_id):
            self._evict(self.slots[board_name])
        return cancelled

    def _account_cancelled(self, cancelled: list) -> None:
        """Finalize jobs the scheduler just cancelled: bill the session, close
        the ``queue`` span with a ``cancelled`` outcome, drop the submit
        timestamp, and retire the job to the retention ring.  (The timestamp
        pop is load-bearing: ``_submit_ts`` used to leak an entry per
        cancelled job, growing without bound under session churn.)"""
        now = self._now()
        for job in cancelled:
            session = self.sessions.get(job.session_id)
            if session is not None:
                session.usage.jobs_cancelled += 1
            self._count("jobs_cancelled")
            queue_start = self._submit_ts.pop(job.job_id, now)
            self.tracer.record_span(
                "queue",
                queue_start,
                now - queue_start,
                tenant=job.tenant,
                session=job.session_id,
                job=job.job_id,
                outcome="cancelled",
            )
            self._retire_job(job)

    @loop_owned
    def cancel_queued_jobs(self, reason: str = "service draining") -> list:
        """Cancel every still-queued job (the shutdown/drain path).

        Jobs move to ``JobState.CANCELLED`` with ``reason`` and are fully
        accounted (session usage, ``queue`` span with a ``cancelled``
        outcome, retention ring) exactly like a session-close cancellation.
        """
        cancelled = self.scheduler.cancel_queued(reason=reason)
        self._account_cancelled(cancelled)
        return cancelled

    def _session(self, session_id: str) -> TenantSession:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise CloudError(f"no session named {session_id!r}") from None

    # -- job submission and execution ---------------------------------------------

    @loop_owned
    def submit_job(
        self,
        session_id: str,
        inputs: dict | None = None,
        output_regions: dict | None = None,
        priority: int = 0,
        cost_estimate: float = 1.0,
        **params,
    ) -> AcceleratorJob:
        """Queue one accelerator run for a provisioned session.

        ``priority`` and ``cost_estimate`` feed the scheduling policy
        (``priority`` and ``sjf`` respectively); the job's fair-share weight
        comes from the session.  When admission control refuses the job
        (fleet queue cap or tenant quota), the returned job carries
        ``JobState.REJECTED`` and the reason in ``job.error`` -- backpressure
        is an outcome the caller checks, not an exception it catches.
        """
        session = self._session(session_id)
        if not session.is_provisioned:
            raise SchedulingError(
                f"session {session_id!r} is {session.state.value}; only "
                "provisioned sessions may submit jobs"
            )
        self._job_counter += 1
        job = AcceleratorJob(
            job_id=f"job-{self._job_counter:04d}",
            session_id=session_id,
            tenant=session.tenant,
            inputs=dict(inputs or {}),
            output_regions=dict(output_regions or {}),
            params=dict(params),
            priority=priority,
            weight=session.weight,
            cost_estimate=cost_estimate,
        )
        self.jobs[job.job_id] = job
        self._count("jobs_submitted")
        self._submit_ts[job.job_id] = self._now()
        try:
            self.scheduler.submit(job)
        except AdmissionError:
            self._count("jobs_rejected")
            session.usage.jobs_rejected += 1
            self._submit_ts.pop(job.job_id, None)
            self.tracer.mark(
                "rejected",
                tenant=job.tenant,
                session=session_id,
                job=job.job_id,
                reason=job.error,
            )
            self._retire_job(job)
        return job

    def reject_job(
        self,
        session_id: str,
        reason: str,
        kind: str = "rejected",
        priority: int = 0,
        cost_estimate: float = 1.0,
    ) -> AcceleratorJob:
        """Mint a job that is REJECTED without ever touching the scheduler.

        The async front-end's backpressure (token-bucket rate limits, load
        shedding, post-shutdown submits) resolves callers' futures with a
        real ``JobState.REJECTED`` job -- never an exception -- and that job
        must be accounted like any other rejection.  ``kind`` names the
        tracer event (``ratelimited`` / ``shed`` / ``rejected``) and, when it
        is not plain ``rejected``, an extra lifetime counter
        (``cloud.jobs_<kind>``) so sheds and rate limits are separable from
        admission-control rejections on the dashboard.
        """
        session = self._session(session_id)
        self._job_counter += 1
        job = AcceleratorJob(
            job_id=f"job-{self._job_counter:04d}",
            session_id=session_id,
            tenant=session.tenant,
            priority=priority,
            weight=session.weight,
            cost_estimate=cost_estimate,
            state=JobState.REJECTED,
            error=reason,
        )
        self._count("jobs_submitted")
        self._count("jobs_rejected")
        if kind != "rejected":
            self._count(f"jobs_{kind}")
        session.usage.jobs_rejected += 1
        self.tracer.mark(
            kind,
            tenant=job.tenant,
            session=session_id,
            job=job.job_id,
            reason=reason,
        )
        self._retire_job(job)
        return job

    @loop_owned
    def begin_next_job(self, eligible=None) -> PlacedJob | None:
        """Acquire + attribute the next queued job; ``None`` if none runnable.

        Emits the ``queue`` and ``place`` spans and returns a
        :class:`PlacedJob` for :meth:`execute_placed` /
        :meth:`finish_placed`.  Must be called from the thread that owns the
        scheduler (the event loop, in the async front-end); ``eligible``
        restricts the policy choice (see
        :meth:`~repro.cloud.scheduler.FleetScheduler.acquire`).
        """
        place_start = self._now()
        placement = self.scheduler.acquire(eligible=eligible)
        if placement is None:
            return None
        job, board_name, warm = placement
        slot = self.slots[board_name]
        if not (
            warm and slot.shield is not None and slot.resident_session == job.session_id
        ):
            # Cold placement: whatever Shield is resident belongs to another
            # session (or the warm path is off).  Wipe it here, on the
            # scheduler-owning thread, so the executor phase never touches
            # scheduler residency state.
            self._evict(slot)
        queue_start = self._submit_ts.pop(job.job_id, place_start)
        self.tracer.record_span(
            "queue",
            queue_start,
            place_start - queue_start,
            tenant=job.tenant,
            session=job.session_id,
            job=job.job_id,
            board=board_name,
        )
        place_end = self._now()
        self.tracer.record_span(
            "place",
            place_start,
            place_end - place_start,
            tenant=job.tenant,
            session=job.session_id,
            job=job.job_id,
            board=board_name,
        )
        return PlacedJob(job=job, slot=slot, warm=warm, queue_start=queue_start)

    @executor_side
    def execute_placed(self, placed: PlacedJob) -> None:
        """Run a placed job's body: Shield load, seal, execute, download.

        This is the only phase the async front-end moves onto an executor
        thread -- it touches just the job, its board slot, and its session
        (at most one job of a session is in flight at a time), never the
        scheduler or the live-job maps.  Exceptions propagate; the caller
        must still invoke :meth:`finish_placed` with the error.
        """
        # The session lookup itself can fail (a dangling session id), and
        # that failure must release the board too -- otherwise the job is
        # stuck RUNNING and the slot leaks out of the free pool forever.
        session = self._session(placed.job.session_id)
        self._execute(placed.job, placed.slot, session, placed.warm)

    @loop_owned
    def finish_placed(self, placed: PlacedJob, error: BaseException | None) -> None:
        """Release the board, finalize counters/spans, retire the job.

        ``error`` is whatever :meth:`execute_placed` raised (``None`` on
        success).  A failed job never leaves a warm Shield behind: the board
        is wiped back to the clean slate before anything else lands on it.
        """
        job, slot, warm = placed.job, placed.slot, placed.warm
        if error is not None:
            if isinstance(error, IntegrityError):
                self.tracer.security(
                    "attack_detected",
                    tenant=job.tenant,
                    session=job.session_id,
                    job=job.job_id,
                    board=slot.name,
                    error=str(error),
                )
            self._evict(slot)
            self.scheduler.release(job, completed=False, error=str(error))
            self._count("jobs_failed")
            session = self.sessions.get(job.session_id)
            if session is not None:
                session.usage.jobs_failed += 1
        else:
            if not self.affinity:
                # Affinity off restores the seed behaviour: the Shield is
                # torn off the board after every job.  With affinity on, a
                # successful job leaves its Shield resident (warm).
                self._evict(slot)
            self.scheduler.release(job, completed=True)
            session = self.sessions.get(job.session_id)
            if session is not None:
                session.usage.jobs_completed += 1
            self._count("jobs_completed")
        finish = self._now()
        self.tracer.record_span(
            "job",
            placed.queue_start,
            finish - placed.queue_start,
            tenant=job.tenant,
            session=job.session_id,
            job=job.job_id,
            board=slot.name,
            warm=warm,
            completed=job.result is not None,
        )
        self._retire_job(job)

    def run_next_job(self) -> AcceleratorJob | None:
        """Place and execute the next queued job; ``None`` if nothing runnable."""
        placed = self.begin_next_job()
        if placed is None:
            return None
        try:
            self.execute_placed(placed)
        except Exception as exc:  # noqa: BLE001 - job failures must free the board
            self.finish_placed(placed, exc)
        else:
            self.finish_placed(placed, None)
        return placed.job

    def run_until_idle(self) -> list:
        """Drain the queue; returns the jobs in completion order."""
        finished = []
        while True:
            job = self.run_next_job()
            if job is None:
                break
            finished.append(job)
        return finished

    @executor_side
    def _execute(
        self,
        job: AcceleratorJob,
        slot: BoardSlot,
        session: TenantSession,
        warm: bool = False,
    ) -> None:
        board = slot.board
        config = session.shield_config
        load_start = self._now()
        if warm and slot.shield is not None and slot.resident_session == session.session_id:
            # Warm hit: the session's Shield is still resident from its last
            # job, so the teardown+reload (the paper's ~6.2 s partial
            # reconfiguration) is skipped entirely.  The datapath is still
            # re-keyed below -- a fresh Data Encryption Key per job -- so
            # keystream never repeats across jobs.
            shield = slot.shield
            self._count("affinity_hits", board=slot.name)
        else:
            # Cold load.  The board was wiped loop-side by begin_next_job
            # before this job was handed to the executor, so the new tenant
            # starts from the clean slate here.
            shield = Shield(
                config,
                board.shell,
                board.on_chip_memory,
                session.shield_private_key,
                obs=self.obs,
            )
            slot.shield = shield
            slot.resident_session = session.session_id
            self._count("shield_loads", board=slot.name)
        runtime = ShefHostRuntime(board.shell, config, label=session.session_id)
        slot.active_session = session.session_id
        session.boards_used.append(slot.name)
        ids = dict(
            tenant=job.tenant, session=session.session_id, job=job.job_id, board=slot.name
        )
        try:
            # Rotate the session's Data Encryption Key for this job: region
            # sub-keys and chunk IVs restart with every Shield load, so a
            # reused key would reuse AES-CTR keystream across jobs (letting
            # the host XOR two observed ciphertexts into plaintext-XOR) and
            # allow cross-job ciphertext replay with valid MACs.
            session.data_owner.generate_data_key(config.shield_id)
            session.load_key = session.data_owner.wrap_load_key(
                session.shield_private_key.public_key.encode(), config.shield_id
            )
            runtime.deliver_load_key(shield, session.load_key)
            load_end = self._now()
            self.tracer.record_span(
                "shield_load", load_start, load_end - load_start, warm=warm, **ids
            )
            self._observe_stage("shield_load", load_end - load_start)

            # Stage sealed inputs through the untrusted host (ciphertext only).
            seal_start = self._now()
            input_bytes = 0
            for region_name, plaintext in job.inputs.items():
                staged = session.data_owner.seal_input(
                    config, region_name, plaintext, shield_id=config.shield_id
                )
                input_bytes += len(plaintext)
                runtime.upload_region(staged)
            seal_end = self._now()
            self.tracer.record_span(
                "input_seal", seal_start, seal_end - seal_start, bytes=input_bytes, **ids
            )
            self._observe_stage("input_seal", seal_end - seal_start)

            execute_start = self._now()
            result = session.accelerator.run(ShieldMemoryAdapter(shield), **job.params)
            shield.flush()
            execute_end = self._now()
            self.tracer.record_span(
                "execute", execute_start, execute_end - execute_start, **ids
            )
            self._observe_stage("execute", execute_end - execute_start)

            # Download requested output regions (still sealed) and unseal them
            # with the tenant's own key ring.  Each spec is either a plaintext
            # length (from chunk 0) or an ``(offset_chunks, length)`` pair for
            # a partial download starting mid-region.  The per-region download
            # and unseal times are aggregated into one span each, so every job
            # emits exactly one ``download`` and one ``output_unseal`` event
            # (zero-duration when no outputs were requested) -- the same shape
            # the simulator emits.
            download_start = self._now()
            download_s = 0.0
            unseal_s = 0.0
            output_bytes = 0
            for region_name, spec in job.output_regions.items():
                if isinstance(spec, (tuple, list)):
                    offset_chunks, length = spec
                else:
                    offset_chunks, length = 0, spec
                plaintext, region_download_s, region_unseal_s = self._download_output(
                    session, shield, runtime, region_name, length, offset_chunks
                )
                job.region_outputs[region_name] = plaintext
                download_s += region_download_s
                unseal_s += region_unseal_s
                output_bytes += len(plaintext)
            self.tracer.record_span(
                "download", download_start, download_s, bytes=output_bytes, **ids
            )
            self.tracer.record_span(
                "output_unseal", download_start + download_s, unseal_s, **ids
            )
            self._observe_stage("download", download_s)
            self._observe_stage("output_unseal", unseal_s)
            # Only a fully successful job (run AND downloads) publishes its
            # result: ``job.result is None`` is the failure signal consumers
            # rely on.
            job.result = result

            stats = shield.stats()
            session.job_stats.append(stats)
            session.usage.absorb_shield_stats(stats)
        finally:
            session.usage.bytes_uploaded += runtime.log.bytes_uploaded
            session.usage.bytes_downloaded += runtime.log.bytes_downloaded
            # The runtime's log label carries the session attribution into the
            # shared audit trail.
            for entry in runtime.log.observed_blobs:
                self._host_ledger.append(
                    HostObservation(
                        session_id=runtime.log.label, board_name=slot.name, entry=entry
                    )
                )
            # Affinity-off teardown (and failure eviction) happens loop-side
            # in finish_placed: eviction updates scheduler residency, which
            # executor threads must not touch.
            slot.active_session = None

    @executor_side
    def _download_output(
        self,
        session: TenantSession,
        shield: Shield,
        runtime: ShefHostRuntime,
        region_name: str,
        length: int | None,
        offset_chunks: int = 0,
    ) -> tuple:
        """Download + unseal one output region; returns (plaintext, download
        seconds, unseal seconds) so the caller can aggregate stage spans."""
        config = session.shield_config
        region = config.region(region_name)
        if not 0 <= offset_chunks < region.num_chunks:
            raise CloudError(
                f"offset {offset_chunks} outside region {region_name!r} "
                f"({region.num_chunks} chunks)"
            )
        if length is None:
            num_chunks = region.num_chunks - offset_chunks
        else:
            num_chunks = -(-length // region.chunk_size)
        if offset_chunks + num_chunks > region.num_chunks:
            raise CloudError(
                f"download of {num_chunks} chunk(s) at offset {offset_chunks} "
                f"runs past region {region_name!r} ({region.num_chunks} chunks)"
            )
        download_start = self._now()
        ciphertext, tags = runtime.download_region(region_name, num_chunks, offset_chunks)
        sealed = DataOwner.sealed_chunks_from_device(
            config, region_name, ciphertext, tags, offset_chunks
        )
        unseal_start = self._now()
        if region.replay_protected:
            counters = shield.pipeline(region_name).counters
            versions = [counters.read(c.chunk_index) for c in sealed]
            plaintext = session.data_owner.unseal_output_with_versions(
                config, region_name, sealed, versions, length, shield_id=config.shield_id
            )
        else:
            plaintext = session.data_owner.unseal_output(
                config, region_name, sealed, length, shield_id=config.shield_id
            )
        unseal_end = self._now()
        return plaintext, unseal_start - download_start, unseal_end - unseal_start

    @loop_owned
    def _evict(self, slot: BoardSlot) -> None:
        """Tear the resident Shield off a board: free on-chip memory, drop the
        register port, and forget the residency.  No-op on an empty board."""
        if slot.shield is not None:
            slot.shield.unload()
            self._count("evictions", board=slot.name)
            owner = self.sessions.get(slot.resident_session or "")
            self.tracer.security(
                "eviction",
                tenant=owner.tenant if owner is not None else None,
                session=slot.resident_session,
                board=slot.name,
            )
        else:
            # Defensive: even without a tracked Shield, leave the user region
            # disconnected (partial reconfiguration of an empty slot).
            slot.board.shell.disconnect_user_logic()
        slot.shield = None
        slot.resident_session = None
        self.scheduler.evict(slot.name)

    @loop_owned
    def evict_idle_shields(self) -> int:
        """Evict every resident warm Shield (the drain/shutdown path).

        Only call with no job in flight -- the front-end does so after its
        executors have drained.  Returns the number of Shields evicted.
        """
        evicted = 0
        for slot in self.slots.values():
            if slot.shield is not None:
                self._evict(slot)
                evicted += 1
        return evicted

    # -- results and auditing -------------------------------------------------------

    def job_result(self, job_id: str, tenant: str) -> AcceleratorJob:
        """Fetch a live or recently retained job, enforcing that the caller
        owns it.  Terminal jobs older than the ``job_retention`` ring are
        gone (their lifetime counts survive in ``stats``)."""
        job = self.jobs.get(job_id) or self._terminal_jobs.get(job_id)
        if job is None:
            raise CloudError(f"no job named {job_id!r}") from None
        session = self._session(job.session_id)
        if session.tenant != tenant:
            raise TenantIsolationError(
                f"tenant {tenant!r} may not read results of {session.tenant!r}"
            )
        return job

    def host_observations(self) -> list:
        """The service-wide host ledger (everything the untrusted host saw)."""
        return list(self._host_ledger)

    def plaintext_exposures(self, plaintext: bytes, window: int = 16) -> list:
        """Audit the host ledger for fragments of a tenant plaintext.

        Probes are ``window``-byte slices of ``plaintext`` taken every
        ``window`` bytes (plus the tail), so any contiguous leak of at least
        ``2 * window - 1`` plaintext bytes is guaranteed to contain a whole
        probe.  The ledger includes the verbatim bytes of every DMA transfer
        on every fleet board, so an empty result really means the host moved
        no recognizable plaintext -- only ciphertext and wrapped keys.

        Every hit is also published as a ``plaintext_exposure`` security
        event, so a leak found by an offline audit still lands on the same
        stream the live security events use.
        """
        if not plaintext:
            probes = set()
        elif len(plaintext) <= window:
            probes = {plaintext}
        else:
            probes = {
                plaintext[offset : offset + window]
                for offset in range(0, len(plaintext) - window + 1, window)
            }
            probes.add(plaintext[-window:])
        exposures = []
        for observation in self._host_ledger:
            for item in observation.entry:
                if isinstance(item, (bytes, bytearray)):
                    blob = bytes(item)
                    if any(probe in blob for probe in probes):
                        exposures.append(observation)
                        owner = self.sessions.get(observation.session_id)
                        self.tracer.security(
                            "plaintext_exposure",
                            tenant=owner.tenant if owner is not None else None,
                            session=observation.session_id,
                            board=observation.board_name,
                            entry_kind=observation.entry[0],
                        )
                        break
        return exposures

    # -- reporting -------------------------------------------------------------------

    def fleet_summary(self) -> dict:
        """Board-by-board load counts plus service totals (for demos/CLI).

        Every number is read from the metrics registry (the same counters the
        event stream increments), so this summary, ``stats``, and an exported
        Prometheus dump always agree.  Placement history per board is the
        ring-buffered recent tail; ``placements_total`` carries the exact
        lifetime count so sustained traffic never inflates memory.
        ``affinity_hit_rate`` is warm placements over all placements, and
        ``tenants`` reports per-tenant fairness: each tenant's completed-job
        share of everything the fleet completed.
        """
        history = self.scheduler.placement_history
        placements = sum(self.scheduler.placement_totals.values())
        tenants: dict = {}
        for session in self.sessions.values():
            usage = session.usage
            entry = tenants.setdefault(
                session.tenant,
                {
                    "jobs_completed": 0,
                    "jobs_failed": 0,
                    "jobs_cancelled": 0,
                    "jobs_rejected": 0,
                    "weight": session.weight,
                },
            )
            entry["jobs_completed"] += usage.jobs_completed
            entry["jobs_failed"] += usage.jobs_failed
            entry["jobs_cancelled"] += usage.jobs_cancelled
            entry["jobs_rejected"] += usage.jobs_rejected
        jobs_completed = self.stats.jobs_completed
        for entry in tenants.values():
            entry["completed_share"] = (
                entry["jobs_completed"] / jobs_completed if jobs_completed else 0.0
            )
        return {
            "policy": self.scheduler.policy.name,
            "affinity": self.affinity,
            "boards": {
                name: {
                    "shield_loads": slot.shield_loads,
                    "affinity_hits": slot.affinity_hits,
                    "evictions": slot.evictions,
                    "resident_session": slot.resident_session,
                    "sessions": history[name],
                    "placements_total": self.scheduler.placement_totals[name],
                }
                for name, slot in self.slots.items()
            },
            "sessions_admitted": self.stats.sessions_admitted,
            "jobs_completed": jobs_completed,
            "jobs_failed": self.stats.jobs_failed,
            "jobs_cancelled": self.stats.jobs_cancelled,
            "jobs_rejected": self.stats.jobs_rejected,
            "jobs_ratelimited": self.stats.jobs_ratelimited,
            "jobs_shed": self.stats.jobs_shed,
            "shield_loads": self.stats.shield_loads,
            "affinity_hits": self.stats.affinity_hits,
            "affinity_hit_rate": (
                self.stats.affinity_hits / placements if placements else 0.0
            ),
            "tenants": tenants,
        }
